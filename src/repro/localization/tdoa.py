"""TDOA (time-difference-of-arrival) multilateration.

TDOA receivers measure when a beacon's transmission *arrives* rather than
how strong it is: differencing arrival times against one reference beacon
cancels the unknown transmit time and leaves range *differences*
``m_i = d_i - d_ref``.  Each difference constrains the node to a
hyperbola; the classic linearisation (subtract the reference beacon's
circle equation from every other audible beacon's) turns the intersection
into a linear system in the augmented unknown ``(x, y, d_ref)``:

    2 (p_i - p_ref) . [x, y] + 2 m_i d_ref  =  |p_i|^2 - |p_ref|^2 - m_i^2

Three equations determine the three unknowns, so the scheme needs at
least **four** audible beacons (one more than plain multilateration).

Two solver variants are provided, mirroring the lstsq-vs-closed-form
split in sound-source TDOA toolkits:

* ``"lstsq"`` — the overdetermined system is solved per row with
  :func:`numpy.linalg.lstsq` (SVD; rank-deficient rows are routed to the
  fallback).  The batch path issues the identical per-row call, so batch
  and loop agree bit for bit by construction.
* ``"closed_form"`` — the 3x3 normal equations are solved with the
  explicit adjugate inverse; every operation is elementwise or an
  exact-zero-padded masked row sum over the pluggable array backend, so
  row results are independent of the batch size (the same kernel shape
  as MMSE's 2x2 path, one dimension up) and the batch path vectorises
  across all rows at once.

Fewer than four audible beacons — or a (near-)singular system, e.g.
collinear anchors — falls back to the centroid of the audible beacons'
declared positions with ``converged = False``, like the MMSE baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.localization.base import (
    LOCALIZERS,
    BeaconInfrastructure,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
    resolve_audible_beacons,
)

__all__ = ["TdoaMultilaterationLocalizer", "TDOA_SOLVERS"]

#: Supported hyperbolic-solve variants.
TDOA_SOLVERS = ("lstsq", "closed_form")

#: Relative determinant threshold of the closed-form 3x3 solve:
#: ``det / trace^3`` is a scale-free conditioning proxy (the 3x3 analogue
#: of the 2x2 kernel's ``det / trace^2``); rows below it would amplify
#: jitter by ``1/lambda_min`` and are flagged unsolvable instead.
_CLOSED_FORM_RTOL = 1e-12


def _tdoa_rows(
    mask: np.ndarray, declared: np.ndarray, differences: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The shared linearisation of every mask row at once.

    Returns ``(a01, a2, rhs, mask_ex)`` over the full beacon axis: the
    position coefficients ``2 (p - p_ref)`` of shape ``(k, b, 2)``, the
    ``d_ref`` coefficients ``2 m`` of shape ``(k, b)``, the right-hand
    side, and the audibility mask with the reference beacon (the first
    audible one, matching
    :meth:`~repro.localization.base.BeaconInfrastructure.range_differences`)
    excluded.
    """
    k, b = mask.shape
    ref = np.argmax(mask, axis=1)  # first audible index = TDOA reference
    p_ref = declared[ref]
    mask_ex = mask.copy()
    mask_ex[np.arange(k), ref] = False

    a01 = 2.0 * (declared[None, :, :] - p_ref[:, None, :])  # (k, b, 2)
    a2 = 2.0 * differences  # (k, b)
    rhs = (
        np.sum(declared**2, axis=1)[None, :]
        - np.sum(p_ref**2, axis=1)[:, None]
        - differences**2
    )
    return a01, a2, rhs, mask_ex


def _lstsq_estimates(
    mask: np.ndarray, declared: np.ndarray, differences: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row SVD solve of the linearised TDOA system.

    The loop body is a pure function of one row's inputs, so calling it
    for a single row or for every row of a batch yields identical bits.
    """
    a01, a2, rhs, mask_ex = _tdoa_rows(mask, declared, differences)
    estimates = np.zeros((mask.shape[0], 2), dtype=np.float64)
    solvable = np.zeros(mask.shape[0], dtype=bool)
    for row in range(mask.shape[0]):
        cols = np.flatnonzero(mask_ex[row])
        a = np.column_stack([a01[row, cols], a2[row, cols]])
        solution, _, rank, _ = np.linalg.lstsq(a, rhs[row, cols], rcond=None)
        if rank == 3:
            estimates[row] = solution[:2]
            solvable[row] = True
    return estimates, solvable


def _closed_form_estimates(
    mask: np.ndarray,
    declared: np.ndarray,
    differences: np.ndarray,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Adjugate solve of the 3x3 normal equations, all rows at once.

    Every term is elementwise or an exact-zero-padded masked sum, so a
    row's result does not depend on which other rows share the batch.
    """
    if backend is None:
        from repro.backend import default_backend

        backend = default_backend()
    a01, a2, rhs, mask_ex = _tdoa_rows(mask, declared, differences)
    a0 = a01[:, :, 0]
    a1 = a01[:, :, 1]
    m00 = backend.masked_sum(a0 * a0, mask_ex)
    m01 = backend.masked_sum(a0 * a1, mask_ex)
    m02 = backend.masked_sum(a0 * a2, mask_ex)
    m11 = backend.masked_sum(a1 * a1, mask_ex)
    m12 = backend.masked_sum(a1 * a2, mask_ex)
    m22 = backend.masked_sum(a2 * a2, mask_ex)
    v0 = backend.masked_sum(a0 * rhs, mask_ex)
    v1 = backend.masked_sum(a1 * rhs, mask_ex)
    v2 = backend.masked_sum(a2 * rhs, mask_ex)

    adj00 = m11 * m22 - m12 * m12
    adj01 = m02 * m12 - m01 * m22
    adj02 = m01 * m12 - m02 * m11
    adj11 = m00 * m22 - m02 * m02
    adj12 = m01 * m02 - m00 * m12
    det = m00 * adj00 + m01 * adj01 + m02 * adj02
    trace = m00 + m11 + m22
    solvable = det > _CLOSED_FORM_RTOL * trace**3
    safe_det = np.where(solvable, det, 1.0)
    estimates = np.column_stack(
        [
            (adj00 * v0 + adj01 * v1 + adj02 * v2) / safe_det,
            (adj01 * v0 + adj11 * v1 + adj12 * v2) / safe_det,
        ]
    )
    return estimates, solvable


@LOCALIZERS.register("tdoa_multilateration", "time_difference", name="tdoa")
@dataclass
class TdoaMultilaterationLocalizer(LocalizationScheme):
    """Hyperbolic multilateration from beacon range differences.

    Parameters
    ----------
    solver:
        ``"lstsq"`` (per-row SVD least squares) or ``"closed_form"``
        (vectorised adjugate solve of the normal equations).  The two
        agree to floating-point conditioning, not bit for bit, and
        therefore carry distinct ``repr`` s (and cache keys).
    """

    solver: str = "lstsq"
    name: str = "tdoa-multilateration"
    requires_beacons = True
    uses_tdoa = True
    modalities = ("tdoa",)

    def __post_init__(self) -> None:
        if self.solver not in TDOA_SOLVERS:
            raise ValueError(
                f"unknown TDOA solver {self.solver!r}; "
                f"choose from {list(TDOA_SOLVERS)}"
            )

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        mask, differences = self._row_inputs(context)
        return self._results_from_rows(
            context.beacons, mask[None, :], differences[None, :]
        )[0]

    def localize_many(
        self, contexts: list[LocalizationContext], rng=None
    ) -> list[LocalizationResult]:
        """Batch path: one shared-infrastructure kernel over all rows.

        Falls back to the per-row loop when the contexts do not share one
        beacon infrastructure.
        """
        if not contexts:
            return []
        beacons = contexts[0].beacons
        if beacons is None or any(ctx.beacons is not beacons for ctx in contexts):
            return super().localize_many(contexts, rng=rng)
        rows = [self._row_inputs(ctx) for ctx in contexts]
        mask = np.stack([row[0] for row in rows])
        differences = np.stack([row[1] for row in rows])
        return self._results_from_rows(beacons, mask, differences)

    # -- shared kernels ------------------------------------------------------

    @staticmethod
    def _row_inputs(
        context: LocalizationContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One context's ``(mask, full-axis differences)`` pair (validated)."""
        beacons = context.beacons
        if beacons is None:
            raise ValueError("TDOA localization needs a BeaconInfrastructure")
        audible = resolve_audible_beacons(beacons, context)
        differences = context.tdoa_differences
        if differences is None:
            raise ValueError("TDOA localization needs tdoa_differences")
        differences = np.asarray(differences, dtype=np.float64)
        if differences.shape != (audible.size,):
            raise ValueError(
                "tdoa_differences must have one entry per audible beacon"
            )
        mask = np.zeros(beacons.num_beacons, dtype=bool)
        mask[audible] = True
        full = np.zeros(beacons.num_beacons, dtype=np.float64)
        full[audible] = differences
        return mask, full

    def _results_from_rows(
        self,
        beacons: BeaconInfrastructure,
        mask: np.ndarray,
        differences: np.ndarray,
    ) -> list[LocalizationResult]:
        """Results for pre-validated mask/difference rows (any batch size)."""
        declared = beacons.declared_positions
        counts = mask.sum(axis=1)
        determined = counts >= 4  # (x, y, d_ref) needs three difference rows
        estimates = np.zeros((mask.shape[0], 2), dtype=np.float64)
        solvable = np.zeros(mask.shape[0], dtype=bool)
        if np.any(determined):
            if self.solver == "closed_form":
                solved = _closed_form_estimates(
                    mask[determined],
                    declared,
                    differences[determined],
                    self.array_backend,
                )
            else:
                solved = _lstsq_estimates(
                    mask[determined], declared, differences[determined]
                )
            estimates[determined], solvable[determined] = solved

        results: list[LocalizationResult] = []
        for row in range(mask.shape[0]):
            if not (determined[row] and solvable[row]):
                # Under-determined (or degenerate geometry): fall back to
                # the centroid of what is audible.
                if counts[row] == 0:
                    fallback = declared.mean(axis=0)
                else:
                    fallback = declared[mask[row]].mean(axis=0)
                results.append(
                    LocalizationResult(position=fallback, converged=False)
                )
                continue
            results.append(
                LocalizationResult(position=estimates[row], converged=True)
            )
        return results
