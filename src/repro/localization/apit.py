"""APIT localization (He et al., MobiCom 2003) — approximate variant.

APIT narrows a node's position down to the intersection of the beacon
triangles the node decides it is inside of, and reports the centre of
gravity of that intersection.  The point-in-triangle decision in the real
protocol uses neighbour signal-strength comparisons; this reproduction uses
the geometric predicate directly on the (noisy) audible-beacon information,
which preserves the scheme's behaviour as a *baseline*: coarse but somewhat
more robust to a single lying beacon than pure multilateration.

The intersection centre of gravity is estimated on a rasterised grid of the
deployment region, which keeps the implementation simple and vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.geometry.shapes import point_in_triangle
from repro.localization.base import (
    LOCALIZERS,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
    resolve_audible_beacons,
)
from repro.types import PAPER_REGION, Region
from repro.utils.validation import check_int, check_positive

__all__ = ["ApitLocalizer"]


@LOCALIZERS.register()
@dataclass
class ApitLocalizer(LocalizationScheme):
    """Approximate point-in-triangulation localization.

    Parameters
    ----------
    region:
        Deployment region to rasterise.
    grid_resolution:
        Grid cell size in metres for the centre-of-gravity computation.
    max_triangles:
        Cap on the number of beacon triangles tested (the closest beacons
        are preferred); keeps the cost bounded for dense beacon sets.
    """

    region: Region = PAPER_REGION
    grid_resolution: float = 10.0
    max_triangles: int = 120
    name: str = "apit"
    requires_beacons = True
    modalities = ("proximity",)

    def __post_init__(self) -> None:
        check_positive("grid_resolution", self.grid_resolution)
        check_int("max_triangles", self.max_triangles, minimum=1)

    def _grid(self) -> np.ndarray:
        xs = np.arange(
            self.region.x_min + self.grid_resolution / 2,
            self.region.x_max,
            self.grid_resolution,
        )
        ys = np.arange(
            self.region.y_min + self.grid_resolution / 2,
            self.region.y_max,
            self.grid_resolution,
        )
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack([gx.ravel(), gy.ravel()])

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        beacons = context.beacons
        if beacons is None:
            raise ValueError("APIT needs a BeaconInfrastructure")
        audible = resolve_audible_beacons(beacons, context)
        if audible.size < 3:
            fallback = beacons.declared_positions.mean(axis=0)
            return LocalizationResult(position=fallback, converged=False)

        # The "am I inside this triangle?" decision is made with the node's
        # (unknown to the scheme) true position when available — modelling a
        # perfect APIT test — and falls back to declared-position heuristics
        # otherwise.  The *estimate* only ever uses declared positions.
        anchors_true = beacons.positions[audible]
        anchors_declared = beacons.declared_positions[audible]
        reference = (
            np.asarray(context.true_position, dtype=np.float64)
            if context.true_position is not None
            else anchors_declared.mean(axis=0)
        )

        grid = self._grid()
        score = np.zeros(grid.shape[0], dtype=np.int64)
        tested = 0
        triangles = list(combinations(range(audible.size), 3))
        # Prefer triangles formed by the closest beacons (higher information).
        order = np.argsort(
            [
                np.linalg.norm(anchors_true[list(tri)].mean(axis=0) - reference)
                for tri in triangles
            ]
        )
        for tri_idx in order:
            if tested >= self.max_triangles:
                break
            tri = triangles[tri_idx]
            tested += 1
            inside = point_in_triangle(
                reference[None, :],
                anchors_true[tri[0]],
                anchors_true[tri[1]],
                anchors_true[tri[2]],
            )[0]
            mask = point_in_triangle(
                grid,
                anchors_declared[tri[0]],
                anchors_declared[tri[1]],
                anchors_declared[tri[2]],
            )
            if inside:
                score += mask.astype(np.int64)
            else:
                score -= mask.astype(np.int64)

        best = score.max()
        cells = grid[score == best]
        if cells.size == 0:  # pragma: no cover - defensive
            cells = grid
        estimate = cells.mean(axis=0)
        return LocalizationResult(position=estimate, converged=True, iterations=tested)
