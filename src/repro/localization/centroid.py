"""Centroid localization (Bulusu, Heidemann, Estrin).

The simplest range-free beacon-based scheme referenced by the paper's
related-work section: a node estimates its position as the centroid of the
*declared* positions of all beacon nodes it can hear.  Low overhead, coarse
accuracy — and trivially misled once a compromised beacon declares a far-away
position, which the ``attack_resilience_study`` example demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.localization.base import (
    LOCALIZERS,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
)

__all__ = ["CentroidLocalizer"]


@LOCALIZERS.register()
@dataclass
class CentroidLocalizer(LocalizationScheme):
    """Estimate a node's position as the centroid of audible beacon positions."""

    name: str = "centroid"

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        beacons = context.beacons
        if beacons is None:
            raise ValueError("the centroid scheme needs a BeaconInfrastructure")
        audible = context.audible_beacons
        if audible is None:
            if context.true_position is None:
                audible = np.arange(beacons.num_beacons)
            else:
                audible = beacons.audible_from(context.true_position)
        audible = np.asarray(audible, dtype=np.int64)
        if audible.size == 0:
            # No beacon audible: the scheme cannot produce an estimate.
            fallback = beacons.declared_positions.mean(axis=0)
            return LocalizationResult(position=fallback, converged=False)
        estimate = beacons.declared_positions[audible].mean(axis=0)
        return LocalizationResult(position=estimate, converged=True)
