"""Centroid localization (Bulusu, Heidemann, Estrin).

The simplest range-free beacon-based scheme referenced by the paper's
related-work section: a node estimates its position as the centroid of the
*declared* positions of all beacon nodes it can hear.  Low overhead, coarse
accuracy — and trivially misled once a compromised beacon declares a far-away
position, which the ``attack_resilience_study`` example demonstrates.

Batched path
------------

Threshold training localizes hundreds of nodes against one shared beacon
set, so :meth:`CentroidLocalizer.localize_many` runs all rows through one
masked-sum kernel instead of a Python-level loop.  Both the per-row and the
batched path call the same :func:`_masked_centroids` kernel (the per-row
case is the ``k = 1`` batch), and skipped beacons contribute exact zeros to
the sums, so the batch reproduces the loop bit for bit — the invariant
suite asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.localization.base import (
    LOCALIZERS,
    BeaconInfrastructure,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
    resolve_audible_beacons,
)

__all__ = ["CentroidLocalizer"]


def _audible_mask(
    beacons: BeaconInfrastructure, context: LocalizationContext
) -> np.ndarray:
    """Boolean audibility mask of one context (shared resolution rules)."""
    mask = np.zeros(beacons.num_beacons, dtype=bool)
    mask[resolve_audible_beacons(beacons, context)] = True
    return mask


def _masked_centroids(
    mask: np.ndarray, declared: np.ndarray, backend=None
) -> tuple[np.ndarray, np.ndarray]:
    """Centroids of the masked beacon subsets, one row per mask row.

    Inaudible beacons enter the sum as exact zeros (adding ``0.0`` is
    exact), so each row equals the sequential sum over its audible subset
    bit for bit regardless of the batch size.  Rows with an empty mask get
    the all-beacon centroid fallback and ``converged = False``.  The sum
    runs through *backend*'s masked-sum kernel (``None`` = the numpy
    reference).
    """
    if backend is None:
        from repro.backend import default_backend

        backend = default_backend()
    counts = mask.sum(axis=1)
    sums = backend.masked_sum(declared[None, :, :], mask)
    converged = counts > 0
    estimates = np.where(
        converged[:, None],
        sums / np.maximum(counts, 1)[:, None],
        declared.mean(axis=0)[None, :],
    )
    return estimates, converged


@LOCALIZERS.register()
@dataclass
class CentroidLocalizer(LocalizationScheme):
    """Estimate a node's position as the centroid of audible beacon positions."""

    name: str = "centroid"
    requires_beacons = True
    modalities = ("proximity",)

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        beacons = context.beacons
        if beacons is None:
            raise ValueError("the centroid scheme needs a BeaconInfrastructure")
        mask = _audible_mask(beacons, context)
        estimates, converged = _masked_centroids(
            mask[None, :], beacons.declared_positions, self.array_backend
        )
        return LocalizationResult(position=estimates[0], converged=bool(converged[0]))

    def localize_many(
        self, contexts: list[LocalizationContext], rng=None
    ) -> list[LocalizationResult]:
        """Vectorised batch path: one masked-sum kernel over all rows.

        Falls back to the per-row loop when the contexts do not share one
        beacon infrastructure (the kernel needs a common declared-position
        matrix).
        """
        if not contexts:
            return []
        beacons = contexts[0].beacons
        if beacons is None or any(ctx.beacons is not beacons for ctx in contexts):
            return super().localize_many(contexts, rng=rng)
        mask = np.stack([_audible_mask(beacons, ctx) for ctx in contexts])
        estimates, converged = _masked_centroids(
            mask, beacons.declared_positions, self.array_backend
        )
        return [
            LocalizationResult(position=estimates[row], converged=bool(converged[row]))
            for row in range(len(contexts))
        ]
