"""Localization schemes.

LAD itself is agnostic to the localization scheme (Section 7.2); the paper
evaluates it on top of the beaconless scheme of Fang, Du and Ning
(INFOCOM 2005), which is implemented in
:class:`repro.localization.beaconless.BeaconlessLocalizer`.  Classic
beacon-based baselines (Centroid, DV-Hop, MMSE multilateration, APIT) are
provided as well so the examples can demonstrate LAD running behind other
schemes and show how beacon compromises translate into localization errors.
"""

from repro.localization.base import (
    LOCALIZERS as registry,
    LocalizationScheme,
    LocalizationResult,
    BeaconInfrastructure,
    resolve_localizer,
)
from repro.localization.beaconless import BeaconlessLocalizer
from repro.localization.centroid import CentroidLocalizer
from repro.localization.multilateration import MmseMultilaterationLocalizer
from repro.localization.dvhop import DvHopLocalizer
from repro.localization.apit import ApitLocalizer
from repro.localization.rssi import RssiPathLossLocalizer
from repro.localization.tdoa import TdoaMultilaterationLocalizer
from repro.localization.beacons import BeaconSpec, beacon_contexts
from repro.localization.errors import (
    localization_error,
    localization_errors,
    is_anomaly,
    ErrorStatistics,
)

# Bound registry operations: ``repro.localization.create("beaconless")``,
# ``repro.localization.available()``, ``@repro.localization.register(...)``.
register = registry.register
create = registry.create
get = registry.get
resolve = registry.resolve
available = registry.available
aliases = registry.aliases

__all__ = [
    "LocalizationScheme",
    "LocalizationResult",
    "BeaconInfrastructure",
    "BeaconSpec",
    "beacon_contexts",
    "registry",
    "register",
    "create",
    "get",
    "resolve",
    "available",
    "aliases",
    "resolve_localizer",
    "BeaconlessLocalizer",
    "CentroidLocalizer",
    "MmseMultilaterationLocalizer",
    "DvHopLocalizer",
    "ApitLocalizer",
    "RssiPathLossLocalizer",
    "TdoaMultilaterationLocalizer",
    "localization_error",
    "localization_errors",
    "is_anomaly",
    "ErrorStatistics",
]
