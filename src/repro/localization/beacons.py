"""Declarative beacon infrastructure: :class:`BeaconSpec` and context building.

The beacon-based baselines (centroid, MMSE multilateration, DV-Hop, APIT)
need a :class:`~repro.localization.base.BeaconInfrastructure` — a set of
anchor nodes with known positions — before they can localize anything.
:class:`BeaconSpec` is the *data* form of that infrastructure: how many
beacons, laid out how (``grid``, ``random`` or ``perimeter``), with what
transmit range and distance-measurement noise, under which placement seed.
It serialises into scenario files (the ``[beacons]`` table of a
``ScenarioSpec``) and builds the concrete infrastructure for any region:

    >>> spec = BeaconSpec(count=16, layout="grid")
    >>> beacons = spec.build(Region(0, 0, 1000, 1000))
    >>> beacons.num_beacons
    16

:func:`beacon_contexts` turns a deployed network plus an infrastructure
into the per-node :class:`~repro.localization.base.LocalizationContext`
batch a beacon-based scheme consumes — audibility from the true position,
noisy distance measurements for the range-based schemes, and the DV-Hop
flooding profile (hop counts + average hop distance) computed once per
network.  This is the bridge :func:`repro.core.training.collect_training_data`
uses to make every registered localizer spec-trainable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.localization.base import (
    BeaconInfrastructure,
    LocalizationContext,
    LocalizationScheme,
)
from repro.localization.dvhop import average_hop_distance, compute_hop_profile
from repro.types import Region
from repro.utils.validation import check_fraction, check_int, check_positive

__all__ = ["BeaconSpec", "BEACON_LAYOUTS", "beacon_contexts"]

#: Supported beacon placement layouts.
BEACON_LAYOUTS = ("grid", "random", "perimeter")


@dataclass(frozen=True)
class BeaconSpec:
    """Declarative description of a beacon (anchor) infrastructure.

    Attributes
    ----------
    count:
        Number of beacon nodes.
    layout:
        Placement pattern: ``"grid"`` (near-square lattice of cell
        centres), ``"random"`` (uniform over the region) or
        ``"perimeter"`` (evenly spaced along the region boundary).
    transmit_range:
        Beacon transmission range in metres (beacons typically carry
        high-power transmitters, so this exceeds the sensor range).
    noise_std:
        Standard deviation of the additive Gaussian error on distance
        measurements (range-based schemes); ``0`` measures exactly.  The
        RSSI scheme interprets the same knob in the dB domain (log-normal
        shadowing) and the TDOA scheme as per-receiver arrival jitter in
        metres of equivalent range.
    seed:
        Placement seed.  Only the ``random`` layout and the beacon-
        compromise draw consume randomness, but the seed is part of the
        fingerprint for every layout so two specs that differ only here
        never share cached artifacts.  ``None`` normalises to ``0`` so a
        standalone :meth:`build` stays deterministic (and the fingerprint
        stable) even when a caller passes no seed explicitly.
    tx_power_dbm:
        RSSI reference power (dBm at one metre) announced by every beacon;
        consumed only by RSSI path-loss schemes.
    path_loss_exponent:
        Log-distance path-loss exponent ``eta`` of the RSSI model.
    compromised:
        Fraction of beacons compromised at build time: each drawn beacon
        declares a false position ``compromise_displacement`` metres from
        its true one (via
        :meth:`~repro.localization.base.BeaconInfrastructure.declare_false_position`),
        so beacon-based schemes train and evaluate against lying anchors.
    compromise_displacement:
        Distance (metres) between a compromised beacon's true and declared
        positions.
    """

    count: int = 16
    layout: str = "grid"
    transmit_range: float = 250.0
    noise_std: float = 0.0
    seed: Optional[int] = 0
    tx_power_dbm: float = -59.0
    path_loss_exponent: float = 2.0
    compromised: float = 0.0
    compromise_displacement: float = 400.0

    def __post_init__(self) -> None:
        if self.seed is None:
            # Default rather than fall through to an OS-entropy generator:
            # placements (and therefore cache fingerprints) must be stable.
            object.__setattr__(self, "seed", 0)
        check_int("count", self.count, minimum=1)
        check_positive("transmit_range", self.transmit_range)
        check_positive("noise_std", self.noise_std, strict=False)
        check_int("seed", self.seed)
        check_positive("path_loss_exponent", self.path_loss_exponent)
        check_fraction("compromised", self.compromised)
        check_positive("compromise_displacement", self.compromise_displacement)
        if not np.isfinite(self.tx_power_dbm):
            raise ValueError("tx_power_dbm must be finite")
        if self.layout not in BEACON_LAYOUTS:
            raise ValueError(
                f"unknown beacon layout {self.layout!r}; "
                f"choose from {list(BEACON_LAYOUTS)}"
            )

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON/TOML-ready; lossless round trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BeaconSpec":
        """Rebuild a spec from its :meth:`as_dict` form (typos raise)."""
        known = {
            "count",
            "layout",
            "transmit_range",
            "noise_std",
            "seed",
            "tx_power_dbm",
            "path_loss_exponent",
            "compromised",
            "compromise_displacement",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown beacon field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)

    def fingerprint(
        self, scheme: Optional[LocalizationScheme] = None
    ) -> Dict[str, Any]:
        """Modality-aware cache-fingerprint view of this spec.

        The five placement/measurement fields every beacon-based scheme
        consumes are always present (keeping pre-existing cache keys for
        centroid/MMSE/DV-Hop/APIT artifacts valid), while modality-only
        parameters are folded in exactly when they can change *scheme*'s
        results: the RSSI reference power and path-loss exponent only for
        ``uses_rssi`` schemes, the compromise axis only when beacons are
        actually compromised.  Re-tuning the RSSI radio model therefore
        never invalidates a DV-Hop artifact, and no two specs that differ
        in a consumed field can alias.
        """
        print_keys = {
            "count": self.count,
            "layout": self.layout,
            "transmit_range": self.transmit_range,
            "noise_std": self.noise_std,
            "seed": self.seed,
        }
        if scheme is None or scheme.uses_rssi:
            print_keys["tx_power_dbm"] = self.tx_power_dbm
            print_keys["path_loss_exponent"] = self.path_loss_exponent
        if self.compromised > 0.0:
            print_keys["compromised"] = self.compromised
            print_keys["compromise_displacement"] = self.compromise_displacement
        return print_keys

    # -- construction ------------------------------------------------------

    def positions(self, region: Region, rng=None) -> np.ndarray:
        """Beacon positions for *region* under this spec's layout."""
        if self.layout == "grid":
            return self._grid_positions(region)
        if self.layout == "perimeter":
            return self._perimeter_positions(region)
        if rng is None:
            rng = np.random.default_rng(self.seed)
        xs = rng.uniform(region.x_min, region.x_max, size=self.count)
        ys = rng.uniform(region.y_min, region.y_max, size=self.count)
        return np.column_stack([xs, ys])

    def _grid_positions(self, region: Region) -> np.ndarray:
        """A near-square lattice of cell centres, row-major, ``count`` long."""
        rows = max(1, int(np.floor(np.sqrt(self.count))))
        cols = int(np.ceil(self.count / rows))
        width = region.x_max - region.x_min
        height = region.y_max - region.y_min
        xs = region.x_min + (np.arange(cols) + 0.5) * (width / cols)
        ys = region.y_min + (np.arange(rows) + 0.5) * (height / rows)
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack([gx.ravel(), gy.ravel()])[: self.count]

    def _perimeter_positions(self, region: Region) -> np.ndarray:
        """``count`` points evenly spaced along the region boundary."""
        width = region.x_max - region.x_min
        height = region.y_max - region.y_min
        perimeter = 2.0 * (width + height)
        offsets = (np.arange(self.count) + 0.5) * (perimeter / self.count)
        points = np.empty((self.count, 2), dtype=np.float64)
        for i, t in enumerate(offsets):
            if t < width:  # bottom edge, left to right
                points[i] = (region.x_min + t, region.y_min)
            elif t < width + height:  # right edge, bottom to top
                points[i] = (region.x_max, region.y_min + (t - width))
            elif t < 2 * width + height:  # top edge, right to left
                points[i] = (
                    region.x_max - (t - width - height),
                    region.y_max,
                )
            else:  # left edge, top to bottom
                points[i] = (
                    region.x_min,
                    region.y_max - (t - 2 * width - height),
                )
        return points

    def build(self, region: Region, rng=None) -> BeaconInfrastructure:
        """The concrete infrastructure for *region*.

        *rng* feeds the ``random`` layout and the beacon-compromise draw;
        when omitted a generator seeded with :attr:`seed` is used, so a
        standalone ``build`` is already deterministic (``seed=None``
        normalises to ``0`` at construction, never to OS entropy).
        Sessions pass a name-derived stream instead so a parallel sweep
        places beacons exactly like the serial one.
        """
        if rng is None and (self.layout == "random" or self.compromised > 0.0):
            rng = np.random.default_rng(self.seed)
        infrastructure = BeaconInfrastructure(
            positions=self.positions(region, rng=rng),
            transmit_range=self.transmit_range,
            tx_power_dbm=self.tx_power_dbm,
            path_loss_exponent=self.path_loss_exponent,
        )
        num_compromised = int(round(self.count * self.compromised))
        if num_compromised > 0:
            chosen = np.sort(
                rng.choice(self.count, size=num_compromised, replace=False)
            )
            angles = rng.uniform(0.0, 2.0 * np.pi, size=num_compromised)
            for beacon, angle in zip(chosen, angles):
                offset = self.compromise_displacement * np.array(
                    [np.cos(angle), np.sin(angle)]
                )
                infrastructure.declare_false_position(
                    int(beacon), infrastructure.positions[beacon] + offset
                )
        return infrastructure

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f", compromised={self.compromised:g}" if self.compromised else ""
        return (
            f"BeaconSpec({self.count} x {self.layout}, "
            f"range={self.transmit_range:g}, noise={self.noise_std:g}{extra})"
        )


def beacon_contexts(
    positions: np.ndarray,
    beacons: BeaconInfrastructure,
    scheme: LocalizationScheme,
    *,
    network=None,
    observations: Optional[np.ndarray] = None,
    knowledge=None,
    noise_std: float = 0.0,
    rng=None,
    nodes: Optional[np.ndarray] = None,
) -> List[LocalizationContext]:
    """Localization contexts for nodes at *positions* under *beacons*.

    Every context carries the beacon infrastructure, the audible-beacon set
    derived from the node's true position and the measurements the scheme's
    modality consumes: (optionally noisy) distances for range-based schemes
    (``uses_ranges``), dB-domain signal-strength readings for RSSI schemes
    (``uses_rssi``), arrival-jittered range differences for TDOA schemes
    (``uses_tdoa``).  For hop-based schemes (``uses_hops``, e.g. DV-Hop)
    the flooding profile is computed once over *network* (required in that
    case) and threaded per node.  *observations*/*knowledge* ride along untouched so
    hybrid schemes can combine both information sources.

    Parameters
    ----------
    positions:
        True node positions, shape ``(k, 2)``.
    beacons:
        The beacon infrastructure the nodes hear.
    scheme:
        The localization scheme the contexts are built for (decides which
        optional fields are populated).
    network:
        The deployed :class:`~repro.network.network.SensorNetwork`
        (DV-Hop only: the flooding runs over its connectivity graph).
    observations, knowledge:
        Optional observation vectors ``(k, n_groups)`` and deployment
        knowledge, forwarded verbatim.
    noise_std:
        Measurement noise of the scheme's modality (range metres, RSSI dB,
        or TDOA jitter metres); requires *rng* when positive.
    rng:
        Generator for the measurement noise.
    nodes:
        Node indices of *positions* within *network*, shape ``(k,)``.
        Hop-based schemes use these to look up per-node flooding rows
        directly; without them the builder falls back to exact position
        matching, which only works while *positions* is bit-identical to
        rows of ``network.positions`` (it breaks after mobility jitter or
        a dtype round trip).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must have shape (k, 2)")
    if nodes is not None:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.shape != (positions.shape[0],):
            raise ValueError("nodes must hold one network index per position")

    hop_counts = None
    avg_hop = None
    if scheme.uses_hops:
        if network is None:
            raise ValueError("DV-Hop contexts need the deployed network")
        node_hops, beacon_hops = compute_hop_profile(network, beacons)
        avg_hop = average_hop_distance(beacons, beacon_hops)
        # Map each requested position onto its node index in the network.
        hop_counts = _hops_for_positions(network, positions, node_hops, nodes=nodes)

    # Audibility of every beacon from every node in one distance pass.
    diff = positions[:, None, :] - beacons.positions[None, :, :]
    distances = np.hypot(diff[..., 0], diff[..., 1])
    audible_mask = distances <= beacons.transmit_range

    contexts: List[LocalizationContext] = []
    for row in range(positions.shape[0]):
        audible = np.flatnonzero(audible_mask[row])
        measured = None
        measured_rssi = None
        tdoa = None
        if scheme.uses_ranges:
            measured = beacons.apply_measurement_noise(
                distances[row, audible], rng=rng, noise_std=noise_std
            )
        if scheme.uses_rssi:
            measured_rssi = beacons.apply_rssi_noise(
                beacons.rssi_from_distance(distances[row, audible]),
                rng=rng,
                noise_db=noise_std,
            )
        if scheme.uses_tdoa:
            tdoa = beacons.range_differences(
                distances[row, audible], rng=rng, noise_std=noise_std
            )
        contexts.append(
            LocalizationContext(
                observation=None if observations is None else observations[row],
                knowledge=knowledge,
                beacons=beacons,
                audible_beacons=audible,
                measured_distances=measured,
                measured_rssi=measured_rssi,
                tdoa_differences=tdoa,
                hop_counts=None if hop_counts is None else hop_counts[row],
                avg_hop_distance=avg_hop,
                true_position=positions[row],
            )
        )
    return contexts


def _hops_for_positions(
    network,
    positions: np.ndarray,
    node_hops: np.ndarray,
    nodes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-position hop-count rows.

    When the caller knows which network nodes the positions belong to
    (*nodes*), rows are gathered by index — robust to positions that have
    drifted from the network's recorded coordinates (temporal mobility
    jitter) or been round-tripped through another dtype.  The historical
    exact-position lookup remains as the fallback for callers that only
    hold coordinates.
    """
    if nodes is not None:
        return np.asarray(
            node_hops[np.asarray(nodes, dtype=np.int64)], dtype=np.float64
        )
    # Fallback: match rows by exact position.  This only resolves positions
    # that are bit-identical to ``network.positions`` rows.
    index = {tuple(p): i for i, p in enumerate(network.positions)}
    rows = np.empty((positions.shape[0], node_hops.shape[1]), dtype=np.float64)
    for row, point in enumerate(positions):
        node = index.get(tuple(point))
        if node is None:
            raise ValueError(
                "DV-Hop contexts require node positions drawn from the network "
                "(pass nodes= indices for positions that have moved or been "
                "round-tripped)"
            )
        rows[row] = node_hops[node]
    return rows
