"""DV-Hop localization (Niculescu and Nath).

A range-free beacon-based baseline: beacons flood the network, every node
records its minimum hop count to each beacon, beacons compute an average
per-hop distance from their mutual hop counts, and nodes multilaterate using
``hop_count x average_hop_distance`` as distance estimates.

The full flooding phase is simulated by :func:`compute_hop_counts` on the
connectivity graph of a :class:`~repro.network.network.SensorNetwork`; the
per-node estimation step reuses the MMSE multilateration solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import dijkstra
from scipy.spatial import cKDTree

from repro.localization.base import (
    LOCALIZERS,
    BeaconInfrastructure,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
)
from repro.localization.multilateration import MmseMultilaterationLocalizer
from repro.network.network import SensorNetwork

__all__ = [
    "DvHopLocalizer",
    "compute_hop_counts",
    "compute_hop_profile",
    "average_hop_distance",
]


def _connectivity_graph(
    positions: np.ndarray, radio_range: float
) -> sparse.csr_matrix:
    """Unit-disk connectivity graph as a sparse adjacency matrix."""
    tree = cKDTree(positions)
    pairs = tree.query_pairs(radio_range, output_type="ndarray")
    n = positions.shape[0]
    if pairs.size == 0:
        return sparse.csr_matrix((n, n))
    data = np.ones(pairs.shape[0], dtype=np.float64)
    adj = sparse.coo_matrix(
        (data, (pairs[:, 0], pairs[:, 1])), shape=(n, n)
    )
    return (adj + adj.T).tocsr()


def compute_hop_profile(
    network: SensorNetwork, beacons: BeaconInfrastructure
) -> tuple[np.ndarray, np.ndarray]:
    """One DV-Hop flooding pass: node→beacon and beacon→beacon hop counts.

    Beacons are attached to the connectivity graph as extra vertices whose
    neighbours are the sensor nodes within the *sensor* radio range (the
    flooding travels over sensor links).  Unreachable pairs get ``inf``.

    Returns ``(node_hops, beacon_hops)`` with shapes
    ``(num_nodes, num_beacons)`` and ``(num_beacons, num_beacons)`` — the
    latter is what :func:`average_hop_distance` calibrates the per-hop
    distance from, so one dijkstra run serves the whole protocol.
    """
    radio_range = network.radio.nominal_range
    all_positions = np.vstack([network.positions, beacons.positions])
    graph = _connectivity_graph(all_positions, radio_range)
    beacon_vertices = np.arange(
        network.num_nodes, network.num_nodes + beacons.num_beacons
    )
    dist = dijkstra(graph, indices=beacon_vertices, unweighted=True)
    # dist has shape (num_beacons, num_nodes + num_beacons).
    return dist[:, : network.num_nodes].T, dist[:, network.num_nodes :]


def compute_hop_counts(
    network: SensorNetwork, beacons: BeaconInfrastructure
) -> np.ndarray:
    """Minimum hop counts from every node to every beacon.

    The node→beacon half of :func:`compute_hop_profile` (kept as the
    original entry point); shape ``(num_nodes, num_beacons)``.
    """
    return compute_hop_profile(network, beacons)[0]


def average_hop_distance(
    beacons: BeaconInfrastructure, beacon_hop_counts: np.ndarray
) -> float:
    """The DV-Hop correction factor: mean true distance per hop among beacons.

    Parameters
    ----------
    beacons:
        The beacon infrastructure (true positions are used — this step runs
        on the beacons themselves).
    beacon_hop_counts:
        Hop counts between beacons, shape ``(b, b)`` (``inf`` when
        unreachable).
    """
    b = beacons.num_beacons
    if beacon_hop_counts.shape != (b, b):
        raise ValueError("beacon_hop_counts must be square with one row per beacon")
    diff = beacons.positions[:, None, :] - beacons.positions[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    mask = np.isfinite(beacon_hop_counts) & (beacon_hop_counts > 0)
    if not np.any(mask):
        raise ValueError("no pair of beacons is connected; cannot calibrate DV-Hop")
    return float(dist[mask].sum() / beacon_hop_counts[mask].sum())


@LOCALIZERS.register("dv_hop", name="dvhop")
@dataclass
class DvHopLocalizer(LocalizationScheme):
    """DV-Hop position estimation for a single node.

    The context must provide ``beacons``, ``hop_counts`` (this node's hop
    count to every beacon) and ``avg_hop_distance``.  Use
    :func:`compute_hop_counts` / :func:`average_hop_distance` to produce
    them for a whole network.
    """

    name: str = "dv-hop"
    requires_beacons = True
    uses_hops = True
    modalities = ("hops",)

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        beacons = context.beacons
        if beacons is None:
            raise ValueError("DV-Hop needs a BeaconInfrastructure")
        if context.hop_counts is None or context.avg_hop_distance is None:
            raise ValueError("DV-Hop needs hop_counts and avg_hop_distance")
        hops = np.asarray(context.hop_counts, dtype=np.float64)
        if hops.shape != (beacons.num_beacons,):
            raise ValueError("hop_counts must have one entry per beacon")
        reachable = np.flatnonzero(np.isfinite(hops) & (hops > 0))
        if reachable.size < 3:
            fallback = beacons.declared_positions.mean(axis=0)
            return LocalizationResult(position=fallback, converged=False)
        distances = hops[reachable] * float(context.avg_hop_distance)
        sub_context = LocalizationContext(
            beacons=beacons,
            audible_beacons=reachable,
            measured_distances=distances,
        )
        return MmseMultilaterationLocalizer().localize(sub_context, rng=rng)
