"""Localization-error bookkeeping (paper Definitions 1–3).

* the **localization error** of a node is ``|L_e − L_a|``;
* an **anomaly** is a localization error exceeding the application's
  Maximum Tolerable Error (MTE);
* a **D-anomaly** is an error exceeding a chosen degree of damage ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import as_point, as_points

__all__ = [
    "localization_error",
    "localization_errors",
    "is_anomaly",
    "ErrorStatistics",
]


def localization_error(estimated, actual) -> float:
    """``|L_e − L_a|`` for a single node (Definition 1)."""
    est = as_point(estimated)
    act = as_point(actual)
    return float(np.hypot(est[0] - act[0], est[1] - act[1]))


def localization_errors(estimated, actual) -> np.ndarray:
    """Vectorised localization errors for matched batches of locations."""
    est = as_points(estimated)
    act = as_points(actual)
    if est.shape != act.shape:
        raise ValueError("estimated and actual must have the same shape")
    diff = est - act
    return np.hypot(diff[:, 0], diff[:, 1])


def is_anomaly(estimated, actual, max_tolerable_error: float) -> bool:
    """Whether the localization error exceeds the MTE (Definition 2).

    With ``max_tolerable_error`` set to a degree of damage ``D`` this is the
    D-anomaly predicate of Definition 3.
    """
    if max_tolerable_error < 0:
        raise ValueError("max_tolerable_error must be >= 0")
    return localization_error(estimated, actual) > max_tolerable_error


@dataclass(frozen=True)
class ErrorStatistics:
    """Summary statistics of a batch of localization errors."""

    mean: float
    median: float
    p90: float
    p99: float
    maximum: float
    count: int

    @classmethod
    def from_errors(cls, errors) -> "ErrorStatistics":
        """Summarise an array of per-node localization errors."""
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ValueError("cannot summarise an empty error array")
        return cls(
            mean=float(errors.mean()),
            median=float(np.median(errors)),
            p90=float(np.quantile(errors, 0.90)),
            p99=float(np.quantile(errors, 0.99)),
            maximum=float(errors.max()),
            count=int(errors.size),
        )

    def as_dict(self) -> dict:
        """Plain-dict view for serialisation/reporting."""
        return {
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
            "count": self.count,
        }
