"""Range-based MMSE multilateration.

Almost all range-based localization schemes (TOA, TDOA, RSS, AoA with
distance conversion) reduce to a minimum-mean-square-error estimation
problem over the measured beacon distances (paper Section 6.3).  This module
implements the standard linearised least-squares solution with an optional
non-linear refinement, and is the baseline the paper's discussion points to
when it argues that a single compromised anchor can introduce an arbitrarily
large localization error.

Batched path
------------

Threshold training multilaterates hundreds of nodes against one shared
beacon set, so the linearised stage runs as one masked normal-equation
kernel over all rows (:func:`_linear_estimates`): the per-anchor terms are
reduced with exact-zero padding for inaudible beacons and the 2x2 systems
are solved with the explicit closed form, all elementwise — so the per-row
path (the ``k = 1`` batch of the same kernel) and
:meth:`MmseMultilaterationLocalizer.localize_many` agree bit for bit.  The
Levenberg–Marquardt refinement stays a per-row loop in both paths (same
function, same inputs, same result).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.localization.base import (
    LOCALIZERS,
    BeaconInfrastructure,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
    resolve_audible_beacons,
)

__all__ = ["MmseMultilaterationLocalizer"]


def _linear_estimates(
    mask: np.ndarray,
    declared: np.ndarray,
    distances: np.ndarray,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Linearised multilateration of every mask row at once.

    Parameters
    ----------
    mask:
        Audibility mask, shape ``(k, b)``; rows are assumed to have at
        least three audible beacons (callers route smaller rows to the
        fallback).
    declared:
        Declared beacon positions, shape ``(b, 2)``.
    distances:
        Measured distances scattered onto the full beacon axis, shape
        ``(k, b)`` (entries outside the mask are ignored).
    backend:
        Array backend running the masked sums and the batched 2x2 solve
        (``None`` = the numpy reference).

    Returns
    -------
    ``(estimates, solvable)`` where rows with a singular or
    near-singular normal matrix (collinear or nearly collinear anchors)
    carry ``solvable = False``.

    The classic linearisation subtracts the last audible anchor's circle
    equation; the resulting overdetermined system is solved through its
    2x2 normal equations with the explicit inverse, so every operation is
    elementwise or an exact-zero-padded row sum — the row results do not
    depend on the batch size.  Near-collinear anchors make the normal
    matrix nearly rank-one and the closed-form solve would amplify range
    noise by ``1/lambda_min``; such rows come back ``solvable = False``
    (see :meth:`~repro.backend.ArrayBackend.solve2x2`) and are routed to
    the non-converged fallback instead of returning an arbitrarily
    amplified position.
    """
    if backend is None:
        from repro.backend import default_backend

        backend = default_backend()
    k, b = mask.shape
    ref = b - 1 - np.argmax(mask[:, ::-1], axis=1)  # last audible index
    p_ref = declared[ref]
    d_ref = distances[np.arange(k), ref]
    mask_ex = mask.copy()
    mask_ex[np.arange(k), ref] = False

    a = 2.0 * (declared[None, :, :] - p_ref[:, None, :])  # (k, b, 2)
    rhs = -(
        distances**2
        - d_ref[:, None] ** 2
        - np.sum(declared**2, axis=1)[None, :]
        + np.sum(p_ref**2, axis=1)[:, None]
    )
    m00 = backend.masked_sum(a[:, :, 0] * a[:, :, 0], mask_ex)
    m01 = backend.masked_sum(a[:, :, 0] * a[:, :, 1], mask_ex)
    m11 = backend.masked_sum(a[:, :, 1] * a[:, :, 1], mask_ex)
    v0 = backend.masked_sum(a[:, :, 0] * rhs, mask_ex)
    v1 = backend.masked_sum(a[:, :, 1] * rhs, mask_ex)
    return backend.solve2x2(m00, m01, m11, v0, v1)


@LOCALIZERS.register("mmse_multilateration", "multilateration", name="mmse")
@dataclass
class MmseMultilaterationLocalizer(LocalizationScheme):
    """Least-squares multilateration from beacon distance measurements.

    Parameters
    ----------
    refine:
        When ``True`` the linearised solution is refined with a
        Levenberg–Marquardt minimisation of the squared range residuals.
    """

    refine: bool = True
    name: str = "mmse-multilateration"
    requires_beacons = True
    uses_ranges = True
    modalities = ("range",)

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        mask, distances = self._row_inputs(context)
        return self._results_from_rows(
            context.beacons, mask[None, :], distances[None, :]
        )[0]

    def localize_many(
        self, contexts: list[LocalizationContext], rng=None
    ) -> list[LocalizationResult]:
        """Vectorised batch path: one normal-equation kernel over all rows.

        Falls back to the per-row loop when the contexts do not share one
        beacon infrastructure.
        """
        if not contexts:
            return []
        beacons = contexts[0].beacons
        if beacons is None or any(ctx.beacons is not beacons for ctx in contexts):
            return super().localize_many(contexts, rng=rng)
        rows = [self._row_inputs(ctx) for ctx in contexts]
        mask = np.stack([row[0] for row in rows])
        distances = np.stack([row[1] for row in rows])
        return self._results_from_rows(beacons, mask, distances)

    # -- shared kernels ------------------------------------------------------

    @staticmethod
    def _row_inputs(
        context: LocalizationContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One context's ``(mask, full-axis distances)`` pair (validated)."""
        beacons = context.beacons
        if beacons is None:
            raise ValueError("multilateration needs a BeaconInfrastructure")
        audible = resolve_audible_beacons(beacons, context)
        distances = context.measured_distances
        if distances is None:
            raise ValueError("multilateration needs measured_distances")
        distances = np.asarray(distances, dtype=np.float64)
        if distances.shape != (audible.size,):
            raise ValueError(
                "measured_distances must have one entry per audible beacon"
            )
        mask = np.zeros(beacons.num_beacons, dtype=bool)
        mask[audible] = True
        full = np.zeros(beacons.num_beacons, dtype=np.float64)
        full[audible] = distances
        return mask, full

    def _results_from_rows(
        self,
        beacons: BeaconInfrastructure,
        mask: np.ndarray,
        distances: np.ndarray,
    ) -> list[LocalizationResult]:
        """Results for pre-validated mask/distance rows (any batch size)."""
        declared = beacons.declared_positions
        counts = mask.sum(axis=1)
        determined = counts >= 3
        estimates = np.zeros((mask.shape[0], 2), dtype=np.float64)
        solvable = np.zeros(mask.shape[0], dtype=bool)
        if np.any(determined):
            estimates[determined], solvable[determined] = _linear_estimates(
                mask[determined],
                declared,
                distances[determined],
                self.array_backend,
            )

        results: list[LocalizationResult] = []
        for row in range(mask.shape[0]):
            if not (determined[row] and solvable[row]):
                # Under-determined (or collinear anchors): fall back to the
                # centroid of what is audible.
                if counts[row] == 0:
                    fallback = declared.mean(axis=0)
                else:
                    fallback = declared[mask[row]].mean(axis=0)
                results.append(
                    LocalizationResult(position=fallback, converged=False)
                )
                continue
            estimate = estimates[row]
            iterations = 0
            if self.refine:
                audible = np.flatnonzero(mask[row])
                estimate, iterations = self._nonlinear_refinement(
                    declared[audible], distances[row, audible], estimate
                )
            results.append(
                LocalizationResult(
                    position=estimate, converged=True, iterations=iterations
                )
            )
        return results

    @staticmethod
    def _nonlinear_refinement(
        anchors: np.ndarray, distances: np.ndarray, start: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Refine the linear solution by minimising squared range residuals."""

        def residuals(theta: np.ndarray) -> np.ndarray:
            diff = anchors - theta[None, :]
            return np.hypot(diff[:, 0], diff[:, 1]) - distances

        result = optimize.least_squares(residuals, start, method="lm", max_nfev=200)
        return result.x, int(result.nfev)
