"""Range-based MMSE multilateration.

Almost all range-based localization schemes (TOA, TDOA, RSS, AoA with
distance conversion) reduce to a minimum-mean-square-error estimation
problem over the measured beacon distances (paper Section 6.3).  This module
implements the standard linearised least-squares solution with an optional
non-linear refinement, and is the baseline the paper's discussion points to
when it argues that a single compromised anchor can introduce an arbitrarily
large localization error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.localization.base import (
    LOCALIZERS,
    LocalizationContext,
    LocalizationResult,
    LocalizationScheme,
)

__all__ = ["MmseMultilaterationLocalizer"]


@LOCALIZERS.register("mmse_multilateration", "multilateration", name="mmse")
@dataclass
class MmseMultilaterationLocalizer(LocalizationScheme):
    """Least-squares multilateration from beacon distance measurements.

    Parameters
    ----------
    refine:
        When ``True`` the linearised solution is refined with a
        Levenberg–Marquardt minimisation of the squared range residuals.
    """

    refine: bool = True
    name: str = "mmse-multilateration"

    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        beacons = context.beacons
        if beacons is None:
            raise ValueError("multilateration needs a BeaconInfrastructure")
        audible = context.audible_beacons
        if audible is None:
            if context.true_position is None:
                audible = np.arange(beacons.num_beacons)
            else:
                audible = beacons.audible_from(context.true_position)
        audible = np.asarray(audible, dtype=np.int64)
        distances = context.measured_distances
        if distances is None:
            raise ValueError("multilateration needs measured_distances")
        distances = np.asarray(distances, dtype=np.float64)
        if distances.shape != (audible.size,):
            raise ValueError(
                "measured_distances must have one entry per audible beacon"
            )
        anchors = beacons.declared_positions[audible]

        if audible.size < 3:
            # Under-determined: fall back to the centroid of what is audible.
            if audible.size == 0:
                fallback = beacons.declared_positions.mean(axis=0)
            else:
                fallback = anchors.mean(axis=0)
            return LocalizationResult(position=fallback, converged=False)

        estimate = self._linear_solution(anchors, distances)
        iterations = 0
        if self.refine:
            estimate, iterations = self._nonlinear_refinement(
                anchors, distances, estimate
            )
        return LocalizationResult(
            position=estimate, converged=True, iterations=iterations
        )

    @staticmethod
    def _linear_solution(anchors: np.ndarray, distances: np.ndarray) -> np.ndarray:
        """Classic linearisation: subtract the last anchor's circle equation."""
        ref = anchors[-1]
        d_ref = distances[-1]
        a = 2.0 * (anchors[:-1] - ref)
        b = (
            distances[:-1] ** 2
            - d_ref**2
            - np.sum(anchors[:-1] ** 2, axis=1)
            + np.sum(ref**2)
        )
        solution, *_ = np.linalg.lstsq(a, -b, rcond=None)
        return solution

    @staticmethod
    def _nonlinear_refinement(
        anchors: np.ndarray, distances: np.ndarray, start: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Refine the linear solution by minimising squared range residuals."""

        def residuals(theta: np.ndarray) -> np.ndarray:
            diff = anchors - theta[None, :]
            return np.hypot(diff[:, 0], diff[:, 1]) - distances

        result = optimize.least_squares(residuals, start, method="lm", max_nfev=200)
        return result.x, int(result.nfev)
