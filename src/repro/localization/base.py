"""Common interfaces for localization schemes.

Every localization scheme implements :class:`LocalizationScheme`.  Two
different kinds of information feed the schemes:

* the **beaconless** scheme uses the node's observation vector (per-group
  neighbour counts) plus deployment knowledge;
* the **beacon-based** baselines use reference messages from beacon/anchor
  nodes, modelled by :class:`BeaconInfrastructure`.

Both are folded into the single :meth:`LocalizationScheme.localize` entry
point which receives a :class:`LocalizationContext` describing everything a
node can see; schemes pick the fields they need.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.deployment.knowledge import DeploymentKnowledge
from repro.registry import Registry
from repro.types import as_point, as_points
from repro.utils.validation import check_positive

__all__ = [
    "BeaconInfrastructure",
    "LocalizationContext",
    "LocalizationResult",
    "LocalizationScheme",
    "LOCALIZERS",
    "resolve_audible_beacons",
    "resolve_localizer",
]

#: Registry of localization schemes; alternative schemes plug in with
#: ``@LOCALIZERS.register(...)`` (also exposed as
#: :func:`repro.localization.register`).
LOCALIZERS = Registry("localizer")


def resolve_localizer(scheme, **kwargs) -> "LocalizationScheme":
    """Resolve a localizer name through :data:`LOCALIZERS` (instances pass)."""
    return LOCALIZERS.resolve(scheme, **kwargs)


@dataclass
class BeaconInfrastructure:
    """A set of beacon (anchor) nodes with known positions.

    Attributes
    ----------
    positions:
        True beacon positions, shape ``(b, 2)``.
    declared_positions:
        The positions the beacons *announce*.  Honest beacons announce their
        true position; compromised beacons may declare arbitrary positions
        (see :mod:`repro.attacks.localization_attacks`).
    transmit_range:
        Beacon transmission range in metres (beacons typically use
        high-power transmitters, so this can exceed the sensor range).
    compromised:
        Boolean mask of compromised beacons.
    tx_power_dbm:
        RSSI reference power: the received signal strength (dBm) measured
        one metre from a beacon.  Only the RSSI path-loss scheme reads it.
    path_loss_exponent:
        Log-distance path-loss exponent ``eta`` (2.0 = free space; indoor
        and cluttered deployments use larger values).
    """

    positions: np.ndarray
    transmit_range: float = 250.0
    declared_positions: Optional[np.ndarray] = None
    compromised: Optional[np.ndarray] = None
    tx_power_dbm: float = -59.0
    path_loss_exponent: float = 2.0

    def __post_init__(self) -> None:
        self.positions = as_points(self.positions)
        check_positive("transmit_range", self.transmit_range)
        check_positive("path_loss_exponent", self.path_loss_exponent)
        if not np.isfinite(self.tx_power_dbm):
            raise ValueError("tx_power_dbm must be finite")
        if self.declared_positions is None:
            self.declared_positions = self.positions.copy()
        else:
            self.declared_positions = as_points(self.declared_positions)
            if self.declared_positions.shape != self.positions.shape:
                raise ValueError("declared_positions must match positions in shape")
        if self.compromised is None:
            self.compromised = np.zeros(self.num_beacons, dtype=bool)
        else:
            self.compromised = np.asarray(self.compromised, dtype=bool)
            if self.compromised.shape != (self.num_beacons,):
                raise ValueError("compromised must have one entry per beacon")

    @property
    def num_beacons(self) -> int:
        """Number of beacon nodes."""
        return int(self.positions.shape[0])

    def audible_from(self, point) -> np.ndarray:
        """Indices of beacons whose transmissions reach *point*."""
        p = as_point(point)
        diff = self.positions - p
        dist = np.hypot(diff[:, 0], diff[:, 1])
        return np.flatnonzero(dist <= self.transmit_range)

    @staticmethod
    def apply_measurement_noise(
        distances: np.ndarray, rng=None, noise_std: float = 0.0
    ) -> np.ndarray:
        """The shared range-measurement error model: additive Gaussian
        noise clipped at zero.  Context builders apply it to their own
        distance arrays so the noise semantics have a single definition.
        """
        if noise_std <= 0.0:
            return distances
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        return np.clip(
            distances + rng.normal(0.0, noise_std, size=distances.shape),
            0.0,
            None,
        )

    def measured_distances(self, point, rng=None, noise_std: float = 0.0) -> np.ndarray:
        """Distances from *point* to every beacon, optionally with noise.

        Range-based schemes (TOA/TDOA/RSS) estimate these distances; the
        ``noise_std`` parameter models measurement error as additive
        Gaussian noise (see :meth:`apply_measurement_noise`).
        """
        p = as_point(point)
        diff = self.positions - p
        dist = np.hypot(diff[:, 0], diff[:, 1])
        return self.apply_measurement_noise(dist, rng=rng, noise_std=noise_std)

    #: Minimum distance (metres) the log-distance path-loss model
    #: evaluates at — readings inside the reference distance saturate
    #: instead of diverging to ``+inf`` dB at ``d = 0``.
    RSSI_REFERENCE_DISTANCE = 1.0

    def rssi_from_distance(self, distances: np.ndarray) -> np.ndarray:
        """Noise-free received signal strength (dBm) at *distances* metres.

        The log-distance path-loss model
        ``rssi(d) = tx_power_dbm - 10 * eta * log10(d)`` with readings
        saturating at the one-metre reference distance.
        """
        d = np.maximum(
            np.asarray(distances, dtype=np.float64), self.RSSI_REFERENCE_DISTANCE
        )
        return self.tx_power_dbm - 10.0 * self.path_loss_exponent * np.log10(d)

    def distance_from_rssi(self, rssi: np.ndarray) -> np.ndarray:
        """Invert :meth:`rssi_from_distance`: log-distance range estimates.

        Shadowing noise applied in the dB domain therefore turns into
        log-normally distributed range errors — the "noisy log-distance
        ranges" the RSSI scheme multilaterates over.
        """
        exponent = (self.tx_power_dbm - np.asarray(rssi, dtype=np.float64)) / (
            10.0 * self.path_loss_exponent
        )
        return np.power(10.0, exponent)

    @staticmethod
    def apply_rssi_noise(
        rssi: np.ndarray, rng=None, noise_db: float = 0.0
    ) -> np.ndarray:
        """The shared RSSI shadowing model: additive Gaussian noise in dB.

        Unlike :meth:`apply_measurement_noise` the readings are *not*
        clipped — signal strength is a log quantity and may take any value.
        """
        if noise_db <= 0.0:
            return rssi
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        return rssi + rng.normal(0.0, noise_db, size=np.shape(rssi))

    @staticmethod
    def range_differences(
        distances: np.ndarray, rng=None, noise_std: float = 0.0
    ) -> np.ndarray:
        """TDOA range differences relative to the first (reference) entry.

        Models per-receiver arrival-time jitter: each distance gets one
        additive Gaussian draw (``noise_std`` metres of equivalent range
        error, exactly one draw per entry so rng ordering is pinnable),
        then differences are taken against the first entry.  The reference
        entry is exactly ``0.0`` by construction; differences may be
        negative, so no clipping is applied.
        """
        d = np.asarray(distances, dtype=np.float64)
        if noise_std > 0.0:
            if rng is None:
                raise ValueError("rng is required when noise_std > 0")
            d = d + rng.normal(0.0, noise_std, size=d.shape)
        if d.size == 0:
            return d
        return d - d[0]

    def declare_false_position(self, beacon: int, position) -> None:
        """Make beacon *beacon* announce a false *position* (compromise)."""
        self.declared_positions[int(beacon)] = as_point(position)
        self.compromised[int(beacon)] = True


@dataclass
class LocalizationContext:
    """Everything a single node can use to estimate its location.

    Schemes use a subset of the fields; unused fields may stay ``None``.

    Attributes
    ----------
    observation:
        Per-group neighbour counts (beaconless scheme).
    knowledge:
        The node's deployment knowledge.
    beacons:
        Beacon infrastructure (beacon-based schemes).
    audible_beacons:
        Indices of the beacons the node can hear.  When ``None`` it is
        derived from the true position (if available) or assumed to be all
        beacons.
    measured_distances:
        Estimated distances to the audible beacons (range-based schemes).
    measured_rssi:
        Received signal strength (dBm) from the audible beacons (RSSI
        path-loss schemes); shadowing noise lives in the dB domain.
    tdoa_differences:
        Range differences (metres) of the audible beacons relative to the
        first audible beacon (TDOA schemes); the reference entry is
        exactly ``0.0`` and other entries may be negative.
    hop_counts:
        Hop counts to every beacon (DV-Hop).
    avg_hop_distance:
        Estimated average single-hop distance (DV-Hop correction factor).
    true_position:
        Ground-truth position, carried only for bookkeeping/evaluation;
        schemes must not read it.
    """

    observation: Optional[np.ndarray] = None
    knowledge: Optional[DeploymentKnowledge] = None
    beacons: Optional[BeaconInfrastructure] = None
    audible_beacons: Optional[np.ndarray] = None
    measured_distances: Optional[np.ndarray] = None
    measured_rssi: Optional[np.ndarray] = None
    tdoa_differences: Optional[np.ndarray] = None
    hop_counts: Optional[np.ndarray] = None
    avg_hop_distance: Optional[float] = None
    true_position: Optional[np.ndarray] = None


def resolve_audible_beacons(
    beacons: BeaconInfrastructure, context: LocalizationContext
) -> np.ndarray:
    """The beacon indices a context's node can hear.

    The shared fallback chain every beacon-based scheme applies: an
    explicit ``audible_beacons`` set wins; otherwise audibility is derived
    from the true position when available; otherwise all beacons are
    assumed audible.  Centralised here so the schemes cannot drift apart.
    """
    audible = context.audible_beacons
    if audible is None:
        if context.true_position is None:
            audible = np.arange(beacons.num_beacons)
        else:
            audible = beacons.audible_from(context.true_position)
    return np.asarray(audible, dtype=np.int64)


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of a localization attempt.

    Attributes
    ----------
    position:
        The estimated location ``L_e``.
    converged:
        Whether the scheme produced a meaningful estimate (e.g. the centroid
        scheme fails when no beacon is audible).
    iterations:
        Number of refinement iterations used (scheme specific; 0 when not
        applicable).
    log_likelihood:
        Log-likelihood of the estimate under the scheme's model, when the
        scheme is probabilistic (beaconless MLE); ``nan`` otherwise.
    """

    position: np.ndarray
    converged: bool = True
    iterations: int = 0
    log_likelihood: float = float("nan")


class LocalizationScheme(abc.ABC):
    """Interface implemented by every localization scheme."""

    #: Human-readable scheme name used in reports.
    name: str = "abstract"

    #: The array backend running the scheme's vectorised kernels, or
    #: ``None`` for the shared numpy reference.  Deliberately a plain
    #: class attribute rather than a dataclass field: the scheme ``repr``
    #: feeds artifact-cache fingerprints, and backend identity is folded
    #: into those keys separately (only when results can differ).
    backend = None

    @property
    def array_backend(self):
        """The resolved :class:`~repro.backend.ArrayBackend` (never None)."""
        if self.backend is not None:
            return self.backend
        from repro.backend import default_backend

        return default_backend()

    def with_backend(self, backend) -> "LocalizationScheme":
        """Attach an array backend to this scheme (returns ``self``)."""
        from repro.backend import resolve_backend

        self.backend = None if backend is None else resolve_backend(backend)
        return self

    #: Whether the scheme needs a :class:`BeaconInfrastructure` in its
    #: contexts.  Sessions use this to decide when to deploy beacons (and
    #: to fold the beacon fingerprint into their artifact keys).
    requires_beacons: bool = False

    #: Whether the scheme consumes ``measured_distances`` (range-based
    #: schemes); context builders only draw measurement noise for these.
    uses_ranges: bool = False

    #: Whether the scheme consumes ``measured_rssi`` (RSSI path-loss
    #: schemes); context builders draw shadowing noise in the dB domain
    #: for these instead of additive range noise.
    uses_rssi: bool = False

    #: Whether the scheme consumes ``tdoa_differences`` (time-difference
    #: schemes); context builders draw per-beacon arrival jitter and take
    #: differences against the first audible beacon for these.
    uses_tdoa: bool = False

    #: Whether the scheme consumes ``hop_counts``/``avg_hop_distance``
    #: (DV-Hop-style schemes); context builders run the flooding phase
    #: over the network once per deployment for these.
    uses_hops: bool = False

    #: Measurement modalities the scheme's estimate depends on.  Modality-
    #: aware attacks (:mod:`repro.attacks.modality`) consult this tag to
    #: decide whether a physical-layer attack can displace the scheme's
    #: estimate at all — an RSSI amplifier does nothing to a hop-count
    #: localizer.  Schemes that do not declare any modality are immune to
    #: every modality-targeted attack.
    modalities: tuple = ()

    @abc.abstractmethod
    def localize(self, context: LocalizationContext, rng=None) -> LocalizationResult:
        """Estimate the node's location from the information in *context*."""

    def localize_many(
        self, contexts: list[LocalizationContext], rng=None
    ) -> list[LocalizationResult]:
        """Localize a batch of nodes (default: sequential loop).

        This is the shared batch entry point of every scheme.  Schemes with
        a vectorised path (centroid and MMSE multilaterate all rows at
        once; the beaconless MLE additionally exposes the array-in/array-out
        ``localize_observations`` engine) override it; DV-Hop and APIT keep
        the per-row loop behind the same interface.  Overrides must agree
        with the per-row :meth:`localize` bit for bit — the cross-localizer
        invariant suite pins that down for every registered scheme.
        """
        return [self.localize(ctx, rng=rng) for ctx in contexts]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
