"""RSSI path-loss localization.

Received-signal-strength localization converts beacon RSSI readings into
range estimates through the log-distance path-loss model and then
multilaterates exactly like the MMSE baseline.  The radio model lives on
the infrastructure (:class:`~repro.localization.base.BeaconInfrastructure`
carries ``tx_power_dbm`` and ``path_loss_exponent``); shadowing noise is
drawn in the dB domain by the context builder, so range errors are
log-normal — small absolute errors near a beacon, large ones far away —
rather than the additive Gaussian model of idealised ranging.

The scheme reuses the MMSE normal-equation kernel end to end: only the
measurement-to-range conversion differs
(:meth:`RssiPathLossLocalizer._row_inputs`), so the batched path, the
per-row path and their bit-for-bit agreement are inherited from
:class:`~repro.localization.multilateration.MmseMultilaterationLocalizer`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.localization.base import (
    LOCALIZERS,
    LocalizationContext,
    resolve_audible_beacons,
)
from repro.localization.multilateration import MmseMultilaterationLocalizer

__all__ = ["RssiPathLossLocalizer"]


@LOCALIZERS.register("rssi_path_loss", "rss", name="rssi")
@dataclass
class RssiPathLossLocalizer(MmseMultilaterationLocalizer):
    """Multilateration over log-distance ranges recovered from RSSI.

    Parameters
    ----------
    refine:
        When ``True`` the linearised solution is refined with a
        Levenberg–Marquardt minimisation of the squared range residuals
        (inherited from the MMSE baseline).
    """

    refine: bool = True
    name: str = "rssi-path-loss"
    requires_beacons = True
    uses_ranges = False
    uses_rssi = True
    modalities = ("rssi",)

    @staticmethod
    def _row_inputs(
        context: LocalizationContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One context's ``(mask, full-axis ranges)`` pair from its RSSI."""
        beacons = context.beacons
        if beacons is None:
            raise ValueError("RSSI localization needs a BeaconInfrastructure")
        audible = resolve_audible_beacons(beacons, context)
        rssi = context.measured_rssi
        if rssi is None:
            raise ValueError("RSSI localization needs measured_rssi")
        rssi = np.asarray(rssi, dtype=np.float64)
        if rssi.shape != (audible.size,):
            raise ValueError("measured_rssi must have one entry per audible beacon")
        mask = np.zeros(beacons.num_beacons, dtype=bool)
        mask[audible] = True
        full = np.zeros(beacons.num_beacons, dtype=np.float64)
        full[audible] = beacons.distance_from_rssi(rssi)
        return mask, full
