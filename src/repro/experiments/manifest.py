"""Advisory sweep manifests: cheap progress accounting for fleet sweeps.

A sweep over a point grid publishes one ``attacked_scores/<key>.npz`` per
point.  Answering "how far along is this sweep?" from the ``.npz`` files
alone means re-deriving every per-point fingerprint and stat-ing every
artifact — fine for one host, wasteful for an operator polling a shared
cache that several shards are filling.  The manifest is a single small JSON
artifact per (session, grid) pair recording the ordered point keys and a
per-point status, so ``lad-repro sweep --status`` reads one file.

Manifests are **advisory**: the ``.npz`` artifacts stay the source of
truth.  A manifest can be stale in either direction — an artifact deleted
behind its back (phantom "done") or published by another shard it has not
seen yet — and :meth:`SweepManifest.reconcile` heals both by re-checking
the store.  Every consumer (``--status``, resume, the finishing-shard
completeness check) treats the manifest as a hint and the store as the
verdict, so a wrong manifest can never skip real work or fabricate results.
Manifest I/O never touches the store's hit/miss counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.experiments.store import ArtifactStore, fingerprint_key

__all__ = [
    "MANIFEST_CATEGORY",
    "MANIFEST_VERSION",
    "SweepManifest",
    "SweepProgress",
    "manifest_key",
]

#: Store category holding the manifest sidecars.
MANIFEST_CATEGORY = "manifest"

#: Manifest payload schema version.
MANIFEST_VERSION = 1

_DONE = "done"
_PENDING = "pending"


def manifest_key(point_keys: Sequence[str]) -> str:
    """Content key of the manifest covering *point_keys* (order-sensitive).

    The key is derived from the ordered per-point artifact keys, which
    already fingerprint everything that identifies a point (deployment
    geometry, seed, metric/attack implementations, attack parameters,
    localizer, backend).  Two sessions sweeping the same grid therefore
    agree on the manifest key without any extra spec plumbing, and any
    change to the grid or its inputs moves the manifest aside along with
    the artifacts it describes.
    """
    return fingerprint_key(
        {
            "category": MANIFEST_CATEGORY,
            "version": MANIFEST_VERSION,
            "points": list(point_keys),
        }
    )


@dataclass(frozen=True)
class SweepProgress:
    """Progress snapshot of one sweep grid, as reported by the manifest."""

    total: int
    done: int
    healed: int
    key: str

    @property
    def remaining(self) -> int:
        """Points still to compute."""
        return self.total - self.done


class SweepManifest:
    """Ordered per-point statuses of one sweep grid.

    Entries are flat dictionaries carrying the point coordinates (metric,
    attack, degree of damage, compromised fraction), the point's artifact
    key and its status (``"pending"`` or ``"done"``).  The entry order is
    the grid order, so a manifest doubles as a human-readable record of
    what a sweep covers.
    """

    def __init__(self, entries: Iterable[dict]):
        self._entries: List[dict] = [dict(entry) for entry in entries]
        self._by_key = {entry["key"]: entry for entry in self._entries}
        if len(self._by_key) != len(self._entries):
            raise ValueError("manifest entries must have unique point keys")

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_points(cls, points, keys: Sequence[str], done=()) -> "SweepManifest":
        """Build a manifest for *points* with artifact *keys* (grid order).

        *done* is an iterable of keys already present in the store.
        """
        points = list(points)
        if len(points) != len(keys):
            raise ValueError("need exactly one artifact key per sweep point")
        done_keys = set(done)
        entries = []
        for point, key in zip(points, keys):
            entries.append(
                {
                    "metric": point.metric,
                    "attack": point.attack,
                    "degree_of_damage": point.degree_of_damage,
                    "compromised_fraction": point.compromised_fraction,
                    "key": key,
                    "status": _DONE if key in done_keys else _PENDING,
                }
            )
        return cls(entries)

    @classmethod
    def from_payload(cls, payload: dict) -> Optional["SweepManifest"]:
        """Parse a stored payload; ``None`` when the shape is unusable."""
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != MANIFEST_VERSION:
            return None
        entries = payload.get("points")
        if not isinstance(entries, list):
            return None
        try:
            return cls(entries)
        except (KeyError, TypeError, ValueError):
            return None

    @classmethod
    def load(cls, store: ArtifactStore, key: str) -> Optional["SweepManifest"]:
        """Load the manifest stored under *key*, or ``None``."""
        payload = store.load_json(MANIFEST_CATEGORY, key)
        if payload is None:
            return None
        return cls.from_payload(payload)

    # -- accessors ---------------------------------------------------------

    @property
    def key(self) -> str:
        """Content key this manifest is stored under."""
        return manifest_key([entry["key"] for entry in self._entries])

    @property
    def entries(self) -> List[dict]:
        """Entry snapshots in grid order."""
        return [dict(entry) for entry in self._entries]

    @property
    def total(self) -> int:
        """Number of points covered."""
        return len(self._entries)

    @property
    def done_count(self) -> int:
        """Number of points marked done."""
        return sum(1 for entry in self._entries if entry["status"] == _DONE)

    def status(self, key: str) -> Optional[str]:
        """Status of the point stored under *key* (``None`` if not covered)."""
        entry = self._by_key.get(key)
        return None if entry is None else entry["status"]

    def as_payload(self) -> dict:
        """JSON-serialisable payload."""
        return {
            "version": MANIFEST_VERSION,
            "key": self.key,
            "points": self.entries,
        }

    # -- mutation ----------------------------------------------------------

    def mark_done(self, key: str) -> None:
        """Mark the point stored under *key* as done."""
        entry = self._by_key.get(key)
        if entry is not None:
            entry["status"] = _DONE

    def absorb_done(self, other: "SweepManifest") -> None:
        """Merge done statuses from *other* (done wins, pending never undoes).

        Concurrent shards each publish their own completions; merging before
        every save makes the shared manifest converge to the union of what
        everyone finished, regardless of write interleaving.
        """
        for entry in self._entries:
            if other._by_key.get(entry["key"], {}).get("status") == _DONE:
                entry["status"] = _DONE

    def reconcile(self, store: ArtifactStore, category: str) -> int:
        """Re-derive every status from the store; heal phantom "done"s.

        Sets each entry's status from ``store.contains`` — the artifacts
        are the source of truth.  Returns the number of entries that
        *claimed* done but whose artifact is gone (the dangerous direction:
        a phantom done would under-report remaining work); entries that
        were pending but turn out to exist are silently promoted (manifest
        lag, harmless).
        """
        healed = 0
        for entry in self._entries:
            present = store.contains(category, entry["key"])
            if entry["status"] == _DONE and not present:
                healed += 1
            entry["status"] = _DONE if present else _PENDING
        return healed

    # -- persistence -------------------------------------------------------

    def save(self, store: ArtifactStore) -> None:
        """Publish this manifest (atomic whole-document write)."""
        store.save_json(MANIFEST_CATEGORY, self.key, self.as_payload())

    def publish(self, store: ArtifactStore) -> None:
        """Save, but skip the write when the stored copy is already equal."""
        existing = store.load_json(MANIFEST_CATEGORY, self.key)
        if existing != self.as_payload():
            self.save(store)

    def record_done(self, store: ArtifactStore, key: str) -> None:
        """Mark *key* done and publish, merging concurrent completions.

        Read-merge-write: absorb any done statuses another shard published
        since our last look, then write the merged document atomically.
        """
        self.mark_done(key)
        disk = type(self).load(store, self.key)
        if disk is not None:
            self.absorb_done(disk)
        self.save(store)
