"""The LAD evaluation session — cached state behind the scenario API.

:class:`LadSession` wires together the whole pipeline of the paper's
evaluation (Section 7):

* deploy sensor networks from the configured deployment model;
* collect benign training data and derive metric thresholds (Section 5.5);
* sample victim nodes, simulate D-anomaly attacks plus the greedy
  observation-tainting adversary (Sections 6, 7.1);
* report ROC curves and detection rates at a fixed false-positive budget.

The pipeline is batched end to end.  Victim observations are collected by
the one-pass :meth:`NeighborIndex.observations_of_nodes` kernel and benign
training locations come from the vectorised
:meth:`BeaconlessLocalizer.localize_observations` engine, so neither pays a
Python-level loop per sample.  Everything expensive is cached per session
instance: the ``g(z)`` table, the evaluation networks, the victims' honest
observations, the benign training scores per metric.

Two kinds of reuse stack on top of the in-memory caches:

* **sweeps** — :meth:`LadSession.sweep` hands the cached state to a
  :class:`~repro.experiments.sweep.SweepRunner`, which fans the
  per-combination scoring across worker processes while every combination
  keeps its name-derived random stream (a parallel sweep reproduces the
  serial one exactly);
* **persistence** — when constructed with a
  :class:`~repro.experiments.store.ArtifactStore` (or ``--cache-dir`` on
  the CLI), trained benign scores and victim samples are keyed by a
  content hash of the training-relevant configuration and re-loaded from
  disk, so repeated and resumed sweeps skip the training pass entirely;
  attacked scores are additionally persisted *per sweep point* (keyed by
  :meth:`attacked_fingerprint`), so an interrupted sweep resumed with the
  same cache directory recomputes only the points that never finished.

Sessions are usually built from a declarative
:class:`~repro.experiments.scenario.ScenarioSpec`.  Beacon-based
localization schemes are first-class: the session deploys the config's
:class:`~repro.localization.beacons.BeaconSpec` (spec defaults when none is
configured) from a name-derived random stream and threads the resulting
:class:`~repro.localization.base.BeaconInfrastructure` through threshold
training, and the artifact keys carry the localizer identity plus the
beacon fingerprint so warm caches never alias across schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.evaluation import (
    DetectionOutcome,
    attacked_scores_from_observations,
    evaluate_detection,
)
from repro.core.metrics import AnomalyMetric, resolve_metric
from repro.core.roc import RocCurve, compute_roc
from repro.backend import ArrayBackend, BackendSpec
from repro.core.training import TrainingData, benign_scores, collect_training_data
from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.knowledge import DeploymentKnowledge
from repro.deployment.models import GridDeploymentModel
from repro.experiments.config import SimulationConfig
from repro.experiments.store import ArtifactStore, fingerprint_key
from repro.localization.apit import ApitLocalizer
from repro.localization.base import (
    LOCALIZERS,
    BeaconInfrastructure,
    LocalizationScheme,
)
from repro.localization.beaconless import BeaconlessLocalizer
from repro.localization.beacons import BeaconSpec
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio
from repro.types import Region
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - imported for type checkers only
    from repro.experiments.sweep import SweepRunner

__all__ = ["LadSession"]

_LOGGER = get_logger("experiments.session")


@dataclass
class _VictimSample:
    """Cached honest observations of the evaluation victims."""

    observations: np.ndarray
    actual_locations: np.ndarray


class LadSession:
    """End-to-end LAD evaluation for one :class:`SimulationConfig`.

    Parameters
    ----------
    config:
        The simulation configuration (paper defaults when omitted).
    localizer:
        Localization scheme used for threshold training: a registered name
        (``repro.localization.available()``) or a configured
        :class:`~repro.localization.base.LocalizationScheme` instance.
        Defaults to the paper's beaconless MLE scheme at the config's
        resolution.  Beacon-based schemes (``centroid``, ``mmse``,
        ``dvhop``, ``apit``) get a :class:`BeaconInfrastructure` deployed
        from the config's :class:`~repro.localization.beacons.BeaconSpec`
        (spec defaults when the config carries none); the beacon layout is
        drawn from a name-derived random stream, so parallel and serial
        sweeps place the same beacons.
    store:
        Optional :class:`~repro.experiments.store.ArtifactStore` (or a
        cache-directory path) persisting trained benign scores and victim
        samples across sessions.

    Examples
    --------
    >>> session = LadSession(SimulationConfig(num_training_samples=50,
    ...                                       num_victims=50))
    >>> outcome = session.detection_rate("diff", "dec_bounded",
    ...                                  degree_of_damage=160,
    ...                                  compromised_fraction=0.1,
    ...                                  false_positive_rate=0.01)
    >>> outcome.detection_rate, outcome.threshold  # doctest: +SKIP
    (0.94, 27.0)
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        localizer: Union[str, LocalizationScheme] = "beaconless",
        store: Union[ArtifactStore, str, None] = None,
    ):
        self.config = config or SimulationConfig()
        self._random = RandomState(self.config.seed)

        region = Region(0.0, 0.0, self.config.region_size, self.config.region_size)
        self._model = GridDeploymentModel(
            region=region,
            rows=self.config.grid_rows,
            cols=self.config.grid_cols,
            distribution=GaussianResidentDistribution(self.config.sigma),
        )
        self._generator = NetworkGenerator(
            model=self._model,
            group_size=self.config.group_size,
            radio=UnitDiskRadio(self.config.radio_range),
        )
        # The session owns one backend instance for everything it computes:
        # the likelihood kernels of its deployment knowledge, the
        # localizer's vectorised kernels, and the training pass.
        self._backend_spec = self.config.backend or BackendSpec()
        self._backend = self._backend_spec.build()
        self._localizer = self._resolve_localizer(localizer)
        if self._localizer.backend is None:
            self._localizer.with_backend(self._backend)
        # Beacon-based schemes always get an infrastructure: the config's
        # spec when present, the BeaconSpec defaults otherwise.
        beacon_spec = self.config.beacons
        if beacon_spec is None and self._localizer.requires_beacons:
            beacon_spec = BeaconSpec()
        self._beacon_spec: Optional[BeaconSpec] = beacon_spec
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self._store: Optional[ArtifactStore] = store

        # Lazy caches.
        self._knowledge: Optional[DeploymentKnowledge] = None
        self._beacons: Optional[BeaconInfrastructure] = None
        self._training: Optional[TrainingData] = None
        self._benign_scores: Dict[str, np.ndarray] = {}
        self._victims: Optional[_VictimSample] = None

    def _resolve_localizer(
        self, localizer: Union[str, LocalizationScheme]
    ) -> LocalizationScheme:
        if isinstance(localizer, str):
            cls = LOCALIZERS.get(localizer)
            if issubclass(cls, BeaconlessLocalizer):
                return cls(resolution=self.config.localization_resolution)
            if issubclass(cls, ApitLocalizer):
                # APIT rasterises the deployment region; match the config's.
                return cls(region=self._model.region)
            return cls()
        return localizer

    # -- cached building blocks ------------------------------------------------

    @property
    def generator(self) -> NetworkGenerator:
        """The network generator used by this session."""
        return self._generator

    @property
    def localizer(self) -> LocalizationScheme:
        """The localization scheme used for threshold training."""
        return self._localizer

    @property
    def store(self) -> Optional[ArtifactStore]:
        """The artifact store persisting trained state (``None`` = off)."""
        return self._store

    @property
    def backend(self) -> ArrayBackend:
        """The array backend owned by this session (never ``None``)."""
        return self._backend

    @property
    def backend_spec(self) -> BackendSpec:
        """The backend spec in effect (the numpy default when unset)."""
        return self._backend_spec

    @property
    def knowledge(self) -> DeploymentKnowledge:
        """The (cached) deployment knowledge, including the ``g(z)`` table."""
        if self._knowledge is None:
            self._knowledge = self._generator.knowledge(
                omega=self.config.gz_omega,
                backend=self._backend,
                dense_fallback_fraction=self._backend_spec.dense_fallback_fraction,
            )
        return self._knowledge

    @property
    def beacon_spec(self) -> Optional[BeaconSpec]:
        """The beacon spec in effect (``None`` = no beacons deployed)."""
        return self._beacon_spec

    @property
    def beacons(self) -> Optional[BeaconInfrastructure]:
        """The (cached) beacon infrastructure, or ``None`` without a spec.

        Placement randomness (the ``random`` layout) comes from a stream
        named after the beacon seed, so the infrastructure depends only on
        ``(config seed, beacon spec)`` — never on call order or on which
        process builds it.
        """
        if self._beacon_spec is None:
            return None
        if self._beacons is None:
            rng = self._random.stream(f"beacons/{self._beacon_spec.seed}")
            self._beacons = self._beacon_spec.build(self._model.region, rng=rng)
        return self._beacons

    # -- artifact fingerprints -------------------------------------------------

    def _deployment_fingerprint(self) -> Dict[str, object]:
        """Config fields that shape the deployed networks and the seed."""
        c = self.config
        return {
            "version": 1,
            "region_size": c.region_size,
            "grid_rows": c.grid_rows,
            "grid_cols": c.grid_cols,
            "sigma": c.sigma,
            "group_size": c.group_size,
            "radio_range": c.radio_range,
            "seed": c.seed,
        }

    def _backend_fingerprint(self) -> Optional[Dict[str, object]]:
        """The backend's contribution to artifact keys.

        ``None`` for numpy-exact backends: their scores are bit-identical
        to the historical default, so they must alias to its keys (a cache
        written before the backend layer existed — or by any numpy-exact
        backend — keeps hitting).  Backends whose results can differ at
        the bit level (torch, float32, CUDA) carry their identity instead.
        """
        return self._backend.fingerprint()

    def _beacon_fingerprint(self) -> Optional[Dict[str, object]]:
        """The beacon spec's contribution to artifact keys.

        ``None`` whenever the localizer is not beacon-based: a beaconless
        session ignores any configured beacons, so two such sessions with
        different ``[beacons]`` tables legitimately share artifacts.
        """
        if not self._localizer.requires_beacons or self._beacon_spec is None:
            return None
        # Modality-aware: only the fields the localizer's modality consumes
        # reach the keys, so e.g. re-tuning the RSSI radio model never
        # invalidates a DV-Hop artifact (and legacy keys stay valid).
        return dict(self._beacon_spec.fingerprint(self._localizer))

    def training_fingerprint(self) -> Dict[str, object]:
        """Everything the trained benign scores depend on.

        Victim-sampling fields are deliberately excluded: two specs that
        differ only in their victim counts share the same trained state.
        The localizer identity and — for beacon-based schemes — the beacon
        fingerprint (layout, count, noise, range, seed) are included, so
        warm caches never alias across localizers or beacon layouts.  The
        backend identity is included only when the backend is not
        numpy-exact (see :meth:`_backend_fingerprint`): the default and
        every bit-exact backend keep the historical keys, so pre-refactor
        warm caches stay warm.
        """
        c = self.config
        fingerprint = self._deployment_fingerprint()
        fingerprint.update(
            {
                "num_training_samples": c.num_training_samples,
                "training_samples_per_network": c.training_samples_per_network,
                "gz_omega": c.gz_omega,
                "localizer": repr(self._localizer),
            }
        )
        beacons = self._beacon_fingerprint()
        if beacons is not None:
            fingerprint["beacons"] = beacons
        backend = self._backend_fingerprint()
        if backend is not None:
            fingerprint["backend"] = backend
        return fingerprint

    def victims_fingerprint(self) -> Dict[str, object]:
        """Everything the victims' honest observations depend on."""
        c = self.config
        fingerprint = self._deployment_fingerprint()
        fingerprint.update(
            {
                "num_victims": c.num_victims,
                "victims_per_network": c.victims_per_network,
            }
        )
        return fingerprint

    @staticmethod
    def _impl_identity(component) -> str:
        """Implementation identity of a pluggable component.

        Cached artifacts must not survive a re-registered or customised
        implementation under the same canonical name, so keys carry the
        class path and ``repr`` alongside the name.
        """
        return (
            f"{type(component).__module__}.{type(component).__qualname__}"
            f":{component!r}"
        )

    def attacked_fingerprint(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
    ) -> Dict[str, object]:
        """Everything one sweep point's attacked scores depend on.

        Builds on :meth:`victims_fingerprint` (the honest observations)
        plus the ``g(z)`` table resolution, the metric and attack-class
        identities and the attack parameters.  The localizer identity and
        the beacon fingerprint ride along too, so a sweep point scored
        under one localization scheme is never served to another — warm
        caches cannot alias across schemes.  The per-point random stream
        is derived from the seed (already fingerprinted) and the parameter
        names, so two runs with equal fingerprints produce bit-identical
        scores regardless of which other points ran alongside them.
        """
        from repro.attacks.constraints import resolve_attack_class

        metric = resolve_metric(metric)
        attack = resolve_attack_class(attack_class)
        fingerprint = self.victims_fingerprint()
        fingerprint.update(
            {
                "gz_omega": self.config.gz_omega,
                "metric": metric.name,
                "metric_impl": self._impl_identity(metric),
                "attack": attack.name,
                "attack_impl": self._impl_identity(attack),
                "degree_of_damage": float(degree_of_damage),
                "compromised_fraction": float(compromised_fraction),
                "localizer": repr(self._localizer),
                "beacons": self._beacon_fingerprint(),
            }
        )
        backend = self._backend_fingerprint()
        if backend is not None:
            fingerprint["backend"] = backend
        return fingerprint

    def attacked_scores_key(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
    ) -> str:
        """Content key of one sweep point's attacked scores."""
        return fingerprint_key(
            self.attacked_fingerprint(
                metric,
                attack_class,
                degree_of_damage=degree_of_damage,
                compromised_fraction=compromised_fraction,
            )
        )

    def attacked_scores_keys(self, points) -> List[str]:
        """Content keys of a whole grid of sweep points, in grid order.

        One :meth:`attacked_scores_key` per point — the sweep runner, the
        manifest progress pre-scan and the finishing-shard completeness
        check all derive point identity through this single path.
        """
        return [
            self.attacked_scores_key(
                point.metric,
                point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
            )
            for point in points
        ]

    def temporal_fingerprint(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        timeline,
    ) -> Dict[str, object]:
        """Everything one point's temporal epoch record depends on.

        The attacked fingerprint (victims, metric/attack identities,
        parameters, localizer, beacons, backend) plus the *entire*
        timeline table via
        :meth:`~repro.events.timeline.TimelineSpec.fingerprint` — any
        change to the epoch grid or any event's schedule or effect
        parameters keys a fresh artifact.  The false-positive budget is
        deliberately excluded: the stored record is the raw per-epoch
        score matrix, and thresholds are applied at load time.
        """
        fingerprint = self.attacked_fingerprint(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
        )
        fingerprint["temporal_version"] = 1
        fingerprint["timeline"] = timeline.fingerprint()
        return fingerprint

    def temporal_key(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        timeline,
    ) -> str:
        """Content key of one point's temporal epoch record."""
        return fingerprint_key(
            self.temporal_fingerprint(
                metric,
                attack_class,
                degree_of_damage=degree_of_damage,
                compromised_fraction=compromised_fraction,
                timeline=timeline,
            )
        )

    @property
    def training_data(self) -> TrainingData:
        """Benign training samples (cached; Section 5.5 step 1)."""
        if self._training is None:
            _LOGGER.info(
                "collecting %d benign training samples (m=%d)",
                self.config.num_training_samples,
                self.config.group_size,
            )
            beacons = (
                self.beacons if self._localizer.requires_beacons else None
            )
            self._training = collect_training_data(
                self._generator,
                num_samples=self.config.num_training_samples,
                samples_per_network=self.config.training_samples_per_network,
                localizer=self._localizer,
                beacons=beacons,
                beacon_noise_std=(
                    self._beacon_spec.noise_std if beacons is not None else 0.0
                ),
                rng=self._random.stream("training"),
                backend=self._backend,
            )
        return self._training

    def benign_scores_key(self, metric: Union[str, AnomalyMetric]) -> str:
        """Artifact-store key of one metric's trained benign scores.

        The training fingerprint plus the metric name and implementation
        identity: a re-registered or customised metric under the same name
        must not hit the scores the stock implementation produced.  The
        serving layer probes this key to decide whether a store is warm
        enough to start without a training pass.
        """
        metric = resolve_metric(metric)
        fingerprint = self.training_fingerprint()
        fingerprint["metric"] = metric.name
        fingerprint["metric_impl"] = self._impl_identity(metric)
        return fingerprint_key(fingerprint)

    def benign_scores(self, metric: Union[str, AnomalyMetric]) -> np.ndarray:
        """Benign metric scores used for threshold training.

        Cached per metric in memory and — when a store is attached —
        persisted under the training fingerprint, so a warm cache serves
        the scores without ever collecting training data.
        """
        metric = resolve_metric(metric)
        if metric.name not in self._benign_scores:
            key = None
            if self._store is not None:
                key = self.benign_scores_key(metric)
                cached = self._store.load("benign_scores", key)
                if cached is not None:
                    self._benign_scores[metric.name] = cached["scores"]
                    return self._benign_scores[metric.name]
            scores = benign_scores(self.training_data, self.knowledge, metric)
            self._benign_scores[metric.name] = scores
            if self._store is not None and key is not None:
                self._store.save("benign_scores", key, scores=scores)
        return self._benign_scores[metric.name]

    def victims(self) -> _VictimSample:
        """Honest observations and locations of the evaluation victims.

        Cached in memory and — when a store is attached — persisted under
        the victim fingerprint, so a warm cache skips network generation
        and neighbour discovery for the evaluation victims too.
        """
        if self._victims is None:
            key = None
            if self._store is not None:
                key = fingerprint_key(self.victims_fingerprint())
                cached = self._store.load("victims", key)
                if cached is not None:
                    self._victims = _VictimSample(
                        observations=cached["observations"],
                        actual_locations=cached["locations"],
                    )
                    return self._victims
            rng = self._random.stream("victims")
            observations: List[np.ndarray] = []
            locations: List[np.ndarray] = []
            remaining = self.config.num_victims
            while remaining > 0:
                network = self._generator.generate(rng)
                index = NeighborIndex(network)
                take = min(self.config.victims_per_network, remaining)
                nodes = rng.choice(network.num_nodes, size=take, replace=False)
                observations.append(index.observations_of_nodes(nodes))
                locations.append(network.positions[nodes])
                remaining -= take
            self._victims = _VictimSample(
                observations=np.vstack(observations),
                actual_locations=np.vstack(locations),
            )
            if self._store is not None and key is not None:
                self._store.save(
                    "victims",
                    key,
                    observations=self._victims.observations,
                    locations=self._victims.actual_locations,
                )
        return self._victims

    # -- evaluation entry points -------------------------------------------------

    def attacked_scores(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
    ) -> np.ndarray:
        """Attacked anomaly scores for one parameter combination.

        When a store is attached the scores are persisted per point under
        :meth:`attacked_fingerprint`, so a resumed sweep recomputes only
        the points that never finished — bit-identical to a cold run,
        because every point's random stream is derived from the seed and
        the parameter names alone.
        """
        key = None
        if self._store is not None:
            key = self.attacked_scores_key(
                metric,
                attack_class,
                degree_of_damage=degree_of_damage,
                compromised_fraction=compromised_fraction,
            )
            cached = self._store.load("attacked_scores", key)
            if cached is not None:
                return cached["scores"]
        scores = self._compute_attacked_scores(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
        )
        if self._store is not None and key is not None:
            self._store.save("attacked_scores", key, scores=scores)
        return scores

    def _compute_attacked_scores(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
    ) -> np.ndarray:
        """Score one parameter combination, bypassing the artifact store.

        :meth:`SweepRunner.iter_attacked_scores` calls this for its cold
        points (it already consulted the store and publishes the results
        itself), so hit/miss counters are bumped exactly once per point.
        """
        from repro.experiments.sweep import attack_stream_name

        sample = self.victims()
        rng = self._random.stream(
            attack_stream_name(
                metric, attack_class, degree_of_damage, compromised_fraction
            )
        )
        return attacked_scores_from_observations(
            self.knowledge,
            sample.observations,
            sample.actual_locations,
            metric=metric,
            attack_class=attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
            rng=rng,
            localizer=self._localizer,
        )

    def attacked_claims(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
    ) -> list:
        """The victims' attacked claims for the serving path.

        One :class:`~repro.serving.LocationClaim` per evaluation victim:
        the tainted observation plus the spoofed claimed location the
        compromised node would submit.  Drawn from the *same* random
        stream as :meth:`attacked_scores`, so a
        :class:`~repro.serving.DetectionService` built from this session
        scores these claims bit-identically to the offline attacked
        scores — ``lad-repro demo`` and the serving equivalence tests
        rely on this.
        """
        from repro.core.evaluation import attack_observations
        from repro.experiments.sweep import attack_stream_name
        from repro.serving.claims import LocationClaim

        metric = resolve_metric(metric)
        sample = self.victims()
        rng = self._random.stream(
            attack_stream_name(
                metric, attack_class, degree_of_damage, compromised_fraction
            )
        )
        tainted, spoofed, _ = attack_observations(
            self.knowledge,
            sample.observations,
            sample.actual_locations,
            metric=metric,
            attack_class=attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
            rng=rng,
            localizer=self._localizer,
        )
        return [
            LocationClaim(
                observation=tainted[i],
                claimed_location=spoofed[i],
                claim_id=f"victim-{i}",
                metric=metric.name,
            )
            for i in range(tainted.shape[0])
        ]

    def roc(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        num_thresholds: Optional[int] = None,
    ) -> RocCurve:
        """ROC curve for one parameter combination (Figures 4–6)."""
        benign = self.benign_scores(metric)
        attacked = self.attacked_scores(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
        )
        return compute_roc(benign, attacked, num_thresholds=num_thresholds)

    def threshold(
        self,
        metric: Union[str, AnomalyMetric],
        *,
        false_positive_rate: float = 0.01,
    ) -> float:
        """The trained detection threshold at a false-positive budget.

        This is the exact threshold every evaluation path applies — the
        tightest value whose benign false-positive rate does not exceed
        the budget (Section 5.5) — and the one a
        :class:`~repro.serving.DetectionService` built from this session
        serves claims against.
        """
        from repro.core.thresholds import derive_threshold

        return derive_threshold(
            self.benign_scores(metric), 1.0 - false_positive_rate
        )

    def outcome(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        false_positive_rate: float = 0.01,
    ) -> DetectionOutcome:
        """Full :class:`~repro.core.evaluation.DetectionOutcome` for one combination.

        The outcome carries the operating point (detection rate, trained
        threshold, false-positive budget), the score samples, a lazily
        computed ROC curve, and per-victim
        :class:`~repro.core.verdict.Verdict` objects via
        :meth:`DetectionOutcome.verdicts` — the same per-decision type the
        streaming service emits.
        """
        benign = self.benign_scores(metric)
        attacked = self.attacked_scores(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
        )
        return evaluate_detection(
            benign,
            attacked,
            false_positive_rate=false_positive_rate,
            metric=metric,
        )

    def detection_rate(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        false_positive_rate: float = 0.01,
    ) -> DetectionOutcome:
        """Detection outcome at a false-positive budget (Figures 7–9).

        Returns the same :class:`~repro.core.evaluation.DetectionOutcome`
        as :meth:`outcome` — read ``.detection_rate`` and ``.threshold``
        for the figures' operating point (the historical
        ``rate, threshold = ...`` unpacking still works).
        """
        return self.outcome(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
            false_positive_rate=false_positive_rate,
        )

    def service(
        self,
        *,
        metrics: Sequence[Union[str, AnomalyMetric]] = ("diff",),
        false_positive_rate: float = 0.01,
        require_warm: bool = False,
    ):
        """A :class:`~repro.serving.DetectionService` over this session's state.

        Trains (or loads from the artifact store) one threshold per metric
        and hands the knowledge, localizer and beacon infrastructure to the
        streaming verifier.  With ``require_warm=True`` the session must
        have a store already holding every needed artifact — startup then
        performs zero training (see
        :meth:`~repro.serving.DetectionService.from_session`).
        """
        from repro.serving import DetectionService

        return DetectionService.from_session(
            self,
            metrics=metrics,
            false_positive_rate=false_positive_rate,
            require_warm=require_warm,
        )

    def sweep(self, *, workers: int = 0) -> "SweepRunner":
        """A :class:`~repro.experiments.sweep.SweepRunner` over this session.

        Parameters
        ----------
        workers:
            Worker processes for the per-combination scoring; ``0``/``1``
            runs serially with identical results.
        """
        from repro.experiments.sweep import SweepRunner

        return SweepRunner(self, workers=workers)

    def temporal(self, timeline=None, *, workers: int = 0):
        """A :class:`~repro.events.temporal.TemporalRunner` over this session.

        Parameters
        ----------
        timeline:
            The :class:`~repro.events.timeline.TimelineSpec` to run every
            point through.  ``None`` means the trivial single-epoch
            timeline — the temporal engine then reproduces the static
            attacked scores bit for bit.
        workers:
            Worker processes for the per-point simulation; ``0``/``1``
            runs serially with identical results.
        """
        from repro.events.temporal import TemporalRunner

        return TemporalRunner(self, timeline, workers=workers)

    def benign_localization_error(self) -> float:
        """Mean benign localization error of the training samples (metres)."""
        return float(self.training_data.localization_errors().mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(m={self.config.group_size}, "
            f"R={self.config.radio_range:g})"
        )
