"""Result containers for the figure-reproduction experiments.

A *figure* is a set of *panels* (the paper's sub-plots), each of which holds
one or more *series* (the curves).  The containers are plain dataclasses
holding Python lists so they serialise straight to JSON/CSV and can be
diffed against the values recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

__all__ = ["SeriesResult", "PanelResult", "FigureResult"]


def _to_float_list(values: Iterable[float]) -> List[float]:
    return [float(v) for v in np.asarray(list(values), dtype=np.float64)]


@dataclass
class SeriesResult:
    """One curve: a label plus matched x/y value lists.

    Attributes
    ----------
    label:
        The legend entry (e.g. ``"Diff Metric"`` or ``"x=10%"``).
    x:
        Values along the x axis (false-positive rate, degree of damage, …).
    y:
        Values along the y axis (detection rate).
    """

    label: str
    x: List[float]
    y: List[float]

    def __post_init__(self) -> None:
        self.x = _to_float_list(self.x)
        self.y = _to_float_list(self.y)
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have the same length")

    def y_at(self, x_value: float) -> float:
        """Interpolate the series at *x_value* (clamped to the data range)."""
        if not self.x:
            raise ValueError("empty series")
        order = np.argsort(self.x)
        xs = np.asarray(self.x)[order]
        ys = np.asarray(self.y)[order]
        return float(np.interp(x_value, xs, ys))

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON serialisation."""
        return {"label": self.label, "x": self.x, "y": self.y}


@dataclass
class PanelResult:
    """One sub-plot of a figure: a title, axis names and several series."""

    title: str
    x_label: str
    y_label: str
    series: List[SeriesResult] = field(default_factory=list)

    def add_series(self, series: SeriesResult) -> None:
        """Append a curve to the panel."""
        self.series.append(series)

    def get_series(self, label: str) -> SeriesResult:
        """Look a curve up by its legend label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in panel {self.title!r}")

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON serialisation."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [s.as_dict() for s in self.series],
        }


@dataclass
class FigureResult:
    """A reproduced figure: id, caption, the parameters used, panels."""

    figure_id: str
    title: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    panels: List[PanelResult] = field(default_factory=list)

    def add_panel(self, panel: PanelResult) -> None:
        """Append a panel to the figure."""
        self.panels.append(panel)

    def get_panel(self, title: str) -> PanelResult:
        """Look a panel up by its title."""
        for p in self.panels:
            if p.title == title:
                return p
        raise KeyError(f"no panel titled {title!r} in figure {self.figure_id!r}")

    # -- serialisation --------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON serialisation."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "parameters": self.parameters,
            "panels": [p.as_dict() for p in self.panels],
        }

    def to_json(self, path: Optional[Path] = None, *, indent: int = 2) -> str:
        """Serialise to JSON, optionally writing to *path*."""
        text = json.dumps(self.as_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def to_csv(self, path: Path) -> None:
        """Write all series as a long-format CSV (panel, series, x, y)."""
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["figure", "panel", "series", "x", "y"])
            for panel in self.panels:
                for series in panel.series:
                    for x, y in zip(series.x, series.y):
                        writer.writerow(
                            [self.figure_id, panel.title, series.label, x, y],
                        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FigureResult":
        """Rebuild a :class:`FigureResult` from its :meth:`as_dict` form."""
        figure = cls(
            figure_id=data["figure_id"],
            title=data["title"],
            parameters=dict(data.get("parameters", {})),
        )
        for panel_data in data.get("panels", []):
            panel = PanelResult(
                title=panel_data["title"],
                x_label=panel_data["x_label"],
                y_label=panel_data["y_label"],
            )
            for series_data in panel_data.get("series", []):
                panel.add_series(
                    SeriesResult(
                        label=series_data["label"],
                        x=series_data["x"],
                        y=series_data["y"],
                    )
                )
            figure.add_panel(panel)
        return figure
