"""Content-addressed artifact store for trained evaluation state.

Threshold training is the expensive part of every sweep: collecting benign
samples means deploying networks and running the localization scheme over
hundreds of observations.  The trained state, however, is a pure function
of the *training-relevant* configuration (deployment geometry, sample
sizes, localizer, seed) — so repeated and resumed sweeps can skip the
training pass entirely by persisting it once.

:class:`ArtifactStore` is a small content-addressed cache over ``.npz``
files.  Keys are SHA-256 hashes of a canonical JSON rendering of the
fingerprint dictionary describing how an artifact was produced; values are
named numpy arrays.  :class:`~repro.experiments.session.LadSession` wires
it into its benign-score, victim-sample and per-point attacked-score
caches, and the CLI exposes it as ``--cache-dir``.

On disk the layout is one directory per category::

    <root>/benign_scores/<key>.npz     trained benign metric scores
    <root>/victims/<key>.npz           victims' honest observations
    <root>/attacked_scores/<key>.npz   attacked scores of one sweep point

Keys change whenever any fingerprinted input changes (deployment geometry,
seed, sample sizes, component implementations, attack parameters), so
stale artifacts are never served — they are simply left unreferenced.

The store counts hits and misses (overall and per category) so tests and
operators can assert that a warm cache actually skipped the training pass.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from collections import Counter
from pathlib import Path
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["ArtifactStore", "fingerprint_key"]


def _canonical_json(payload) -> str:
    """Deterministic JSON rendering used for content addressing.

    Keys are sorted and floats go through ``repr`` (via Python's ``json``),
    so two fingerprints with equal values always hash identically.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint_key(payload: Mapping) -> str:
    """SHA-256 content key of a fingerprint dictionary."""
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


class ArtifactStore:
    """A content-addressed ``.npz`` cache with hit/miss counters.

    Parameters
    ----------
    root:
        Directory holding the cached artifacts (created on first write).

    Examples
    --------
    >>> store = ArtifactStore(tmp_path)
    >>> key = fingerprint_key({"seed": 7, "group_size": 300})
    >>> store.load("benign_scores", key) is None
    True
    >>> store.save("benign_scores", key, scores=np.arange(3.0))
    >>> store.load("benign_scores", key)["scores"]
    array([0., 1., 2.])
    >>> store.hits, store.misses
    (1, 1)
    """

    def __init__(self, root):
        self._root = Path(root)
        self.hits = 0
        self.misses = 0
        self.hit_counts: Counter = Counter()
        self.miss_counts: Counter = Counter()

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    def path_for(self, category: str, key: str) -> Path:
        """Filesystem path of the artifact for ``(category, key)``."""
        return self._root / category / f"{key}.npz"

    def contains(self, category: str, key: str) -> bool:
        """Whether an artifact exists (does not touch the counters)."""
        return self.path_for(category, key).is_file()

    def probe(self, category: str, key: str) -> bool:
        """Existence check that counts an absent artifact as a miss.

        The streaming sweep partitions warm/cold points with this before
        fanning out, then :meth:`load`\\ s each warm artifact only at yield
        time (that read counts the hit).  A present artifact is therefore
        not counted here — only the definitive miss is, exactly once per
        artifact the caller will have to compute and publish.
        """
        if self.contains(category, key):
            return True
        self.misses += 1
        self.miss_counts[category] += 1
        return False

    def load(self, category: str, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The stored arrays for ``(category, key)``, or ``None`` on a miss.

        A hit bumps ``hits`` (and ``hit_counts[category]``); a miss —
        including an unreadable or corrupt file — bumps ``misses``.

        A file that exists but cannot be read (truncated by a crashed
        non-atomic writer, bit rot, ...) is *quarantined*: it is renamed to
        ``<key>.npz.corrupt`` so the artifact path is free again and a
        subsequent :meth:`save` of the same key can never race this
        reader's half-open handle against its own atomic rename.
        """
        path = self.path_for(category, key)
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except FileNotFoundError:
            self.misses += 1
            self.miss_counts[category] += 1
            return None
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            self.misses += 1
            self.miss_counts[category] += 1
            self._quarantine(path)
            return None
        self.hits += 1
        self.hit_counts[category] += 1
        return arrays

    def load_required(self, category: str, key: str) -> Dict[str, np.ndarray]:
        """Like :meth:`load`, but a miss raises instead of returning ``None``.

        Used by warm-start paths (a :class:`~repro.serving.DetectionService`
        booting with ``require_warm=True``) that must *never* fall back to
        recomputation: the raised ``KeyError`` names the missing artifact so
        the operator can run the training pass once, explicitly, instead of
        discovering an accidental cold start from its latency.
        """
        arrays = self.load(category, key)
        if arrays is None:
            raise KeyError(
                f"artifact {category}/{key} is not in the store at "
                f"{self._root} (cold store: run the training pass once to "
                "publish it)"
            )
        return arrays

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt artifact aside (best effort, atomic rename)."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - already gone or unwritable dir
            pass

    def save(self, category: str, key: str, **arrays: np.ndarray) -> Path:
        """Persist named *arrays* under ``(category, key)``.

        The write is atomic (tempfile + rename) so a crashed or concurrent
        writer can never leave a truncated artifact behind; concurrent
        writers of the same key simply race to publish identical content.
        """
        if not arrays:
            raise ValueError("refusing to store an empty artifact")
        path = self.path_for(category, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return path

    # -- advisory JSON sidecars --------------------------------------------
    #
    # Small JSON artifacts (sweep manifests) living next to the ``.npz``
    # categories.  They are advisory metadata, not cached computation: their
    # I/O deliberately never touches the hit/miss counters, so progress
    # pre-scans cannot perturb the cache accounting that tests and operators
    # assert on.

    def json_path_for(self, category: str, key: str) -> Path:
        """Filesystem path of the JSON sidecar for ``(category, key)``."""
        return self._root / category / f"{key}.json"

    def load_json(self, category: str, key: str) -> Optional[dict]:
        """The stored JSON payload, or ``None`` when absent or unreadable.

        A corrupt sidecar is quarantined (renamed to ``.json.corrupt``) and
        treated as absent — advisory metadata is always rebuildable from the
        ``.npz`` artifacts, which stay the source of truth.
        """
        path = self.json_path_for(category, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._quarantine(path)
            return None
        return payload if isinstance(payload, dict) else None

    def save_json(self, category: str, key: str, payload: Mapping) -> Path:
        """Persist a JSON payload under ``(category, key)`` atomically.

        Same tempfile + rename discipline as :meth:`save`: a reader never
        sees a torn file, and concurrent writers race to publish whole
        documents (last rename wins).
        """
        path = self.json_path_for(category, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return path

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (``hits``, ``misses``)."""
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArtifactStore({str(self._root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
