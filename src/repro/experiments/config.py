"""Configuration of the LAD evaluation simulations.

The defaults follow the paper's experimental setup (Section 7.1): a
1000 m x 1000 m region with a 10 x 10 deployment grid, Gaussian landing
distribution with ``σ`` = 50 m, ``m`` = 300 sensors per group and a unit-disk
radio.  The sample-size parameters (training samples, victims, number of
deployed networks) control Monte-Carlo accuracy and are the knobs the
benchmarks scale down to keep the figure reproduction fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.backend import BackendSpec
from repro.localization.beacons import BeaconSpec
from repro.utils.validation import check_int, check_positive

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one LAD evaluation simulation.

    Attributes
    ----------
    group_size:
        Sensors per deployment group (``m``).
    radio_range:
        Unit-disk transmission range ``R`` in metres.
    sigma:
        Standard deviation of the Gaussian landing distribution.
    grid_rows, grid_cols:
        Deployment-grid dimensions (10 x 10 in the paper).
    region_size:
        Side length of the square deployment region in metres.
    num_training_samples:
        Benign samples used to train detection thresholds.
    training_samples_per_network:
        Benign samples drawn from each training deployment.
    num_victims:
        Attacked samples per parameter combination.
    victims_per_network:
        Victims drawn from each evaluation deployment.
    localization_resolution:
        Final grid resolution (metres) of the beaconless MLE search.
    gz_omega:
        Number of sub-ranges in the ``g(z)`` lookup table.
    beacons:
        Optional :class:`~repro.localization.beacons.BeaconSpec` describing
        the beacon infrastructure deployed for beacon-based localizers
        (``None`` = the paper's beaconless setting; sessions running a
        beacon-based scheme fall back to the spec's defaults).
    backend:
        Optional :class:`~repro.backend.BackendSpec` selecting the array
        backend running the hot likelihood kernels (``None`` = the
        bit-exact numpy reference).  Numpy-exact selections share the
        default's artifact-cache keys; others carry their own identity.
    seed:
        Master seed; every random stream is derived from it.
    """

    group_size: int = 300
    radio_range: float = 100.0
    sigma: float = 50.0
    grid_rows: int = 10
    grid_cols: int = 10
    region_size: float = 1000.0
    num_training_samples: int = 400
    training_samples_per_network: int = 100
    num_victims: int = 400
    victims_per_network: int = 200
    localization_resolution: float = 2.0
    gz_omega: int = 1000
    beacons: Optional[BeaconSpec] = None
    backend: Optional[BackendSpec] = None
    seed: int = 20050404

    def __post_init__(self) -> None:
        check_int("group_size", self.group_size, minimum=1)
        check_positive("radio_range", self.radio_range)
        check_positive("sigma", self.sigma)
        check_int("grid_rows", self.grid_rows, minimum=1)
        check_int("grid_cols", self.grid_cols, minimum=1)
        check_positive("region_size", self.region_size)
        check_int("num_training_samples", self.num_training_samples, minimum=1)
        check_int(
            "training_samples_per_network",
            self.training_samples_per_network,
            minimum=1,
        )
        check_int("num_victims", self.num_victims, minimum=1)
        check_int("victims_per_network", self.victims_per_network, minimum=1)
        check_positive("localization_resolution", self.localization_resolution)
        check_int("gz_omega", self.gz_omega, minimum=10)
        if self.beacons is not None and not isinstance(self.beacons, BeaconSpec):
            raise TypeError("beacons must be a BeaconSpec (or None)")
        if self.backend is not None and not isinstance(self.backend, BackendSpec):
            raise TypeError("backend must be a BackendSpec (or None)")

    def with_beacons(self, beacons: Optional[BeaconSpec]) -> "SimulationConfig":
        """A copy of the config with a different beacon infrastructure spec."""
        return replace(self, beacons=beacons)

    def with_backend(self, backend: Optional[BackendSpec]) -> "SimulationConfig":
        """A copy of the config with a different array-backend spec."""
        return replace(self, backend=backend)

    @property
    def n_groups(self) -> int:
        """Total number of deployment groups."""
        return self.grid_rows * self.grid_cols

    @property
    def num_nodes(self) -> int:
        """Total number of deployed sensors per network."""
        return self.n_groups * self.group_size

    def with_group_size(self, group_size: int) -> "SimulationConfig":
        """A copy of the config with a different network density ``m``."""
        return replace(self, group_size=int(group_size))

    def with_seed(self, seed: int) -> "SimulationConfig":
        """A copy of the config with a different master seed."""
        return replace(self, seed=int(seed))

    def scaled(self, scale: float) -> "SimulationConfig":
        """Scale the Monte-Carlo sample sizes by *scale* (for quick runs).

        Only the statistical sample sizes are scaled — the physical
        parameters (density, range, grid) stay untouched so the simulated
        system remains the paper's.
        """
        check_positive("scale", scale)
        return replace(
            self,
            num_training_samples=max(20, int(round(self.num_training_samples * scale))),
            training_samples_per_network=max(
                10, int(round(self.training_samples_per_network * scale))
            ),
            num_victims=max(20, int(round(self.num_victims * scale))),
            victims_per_network=max(10, int(round(self.victims_per_network * scale))),
        )
