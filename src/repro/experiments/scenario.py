"""Declarative scenario specifications for the LAD evaluation.

A :class:`ScenarioSpec` is the *data* form of an evaluation: one
:class:`~repro.experiments.config.SimulationConfig` plus the parameter
grid (metrics × attack classes × degrees of damage × compromise
fractions, optionally × network densities) and the localizer choice.  It
is serialisable to TOML and JSON, validates every component name against
the registries at construction time, and compiles to
:class:`~repro.experiments.sweep.SweepPoint` grids for the existing
:class:`~repro.experiments.sweep.SweepRunner`:

    >>> spec = ScenarioSpec(name="demo", metrics=("diff", "add_all"),
    ...                     degrees=(80.0, 160.0))
    >>> session = spec.session()
    >>> rates = session.sweep(workers=4).detection_rates(spec.points())

Every figure driver of :mod:`repro.experiments.figures` is a
``ScenarioSpec`` over this same engine, and the CLI runs arbitrary spec
files via ``lad-repro sweep scenario.toml``.  New scenarios — different
attack mixes, other metrics, denser grids, alternative localizers — are
therefore spec files, not code.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.attacks.constraints import ATTACKS
from repro.backend import BackendSpec
from repro.core.metrics import METRICS
from repro.events.timeline import TimelineSpec
from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore
from repro.experiments.sweep import SweepPoint, SweepRunner, shard_points
from repro.localization.base import LOCALIZERS
from repro.localization.beacons import BeaconSpec
from repro.utils.validation import check_fraction

__all__ = ["ScenarioSpec"]

#: ScenarioSpec fields holding grid axes (ordered as in the sweep grid).
_AXIS_FIELDS = ("metrics", "attacks", "degrees", "fractions")


def _toml_value(value: Any) -> str:
    """Render one scalar/array value as TOML.

    Only the types a :class:`ScenarioSpec` contains are supported
    (strings, booleans, numbers, flat arrays); JSON string escaping is
    valid TOML basic-string escaping.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return json.dumps(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise TypeError(f"cannot render {type(value).__name__} as TOML")


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, serialisable LAD evaluation scenario.

    Attributes
    ----------
    name:
        Scenario identifier (used in reports and artifact paths).
    description:
        Free-form description for humans.
    metrics, attacks:
        Component names; resolved against :data:`repro.core.metrics.METRICS`
        and :data:`repro.attacks.constraints.ATTACKS` at construction time
        and stored in canonical form.
    degrees:
        Degrees of damage ``D`` (metres).
    fractions:
        Compromised-neighbour fractions ``x``.
    group_sizes:
        Optional network-density axis (sensors per group ``m``).  When
        non-empty the scenario spans one full training + sweep pass per
        density (the Figure 9 shape); when empty the config's own
        ``group_size`` is used.
    localizer:
        Registered localization-scheme name used for threshold training.
    localizers:
        Optional localization-scheme axis.  When non-empty the scenario
        spans one full training + sweep pass per scheme (the figure-L
        shape: every registered localizer is a first-class scenario axis);
        when empty the single ``localizer`` is used.
    false_positive_rate:
        The false-positive budget detection rates are read at.
    timeline:
        Optional :class:`~repro.events.timeline.TimelineSpec` — the
        ``[timeline]`` table of spec files.  When present the scenario is
        *temporal*: every sweep point is additionally run through the
        epoch-stepped engine (mobility, churn, mid-run attacks) and
        reports the online metric family (detection latency, time to
        first false positive, detection-rate drift).
    config:
        The underlying :class:`SimulationConfig` (its optional ``beacons``
        and ``backend`` specs serialise as the ``[beacons]`` and
        ``[backend]`` tables of the spec file).
    """

    name: str = "scenario"
    description: str = ""
    metrics: Tuple[str, ...] = ("diff",)
    attacks: Tuple[str, ...] = ("dec_bounded",)
    degrees: Tuple[float, ...] = (120.0,)
    fractions: Tuple[float, ...] = (0.10,)
    group_sizes: Tuple[int, ...] = ()
    localizer: str = "beaconless"
    localizers: Tuple[str, ...] = ()
    false_positive_rate: float = 0.01
    timeline: Optional[TimelineSpec] = None
    config: SimulationConfig = field(default_factory=SimulationConfig)

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "name", str(self.name))
        set_(self, "description", str(self.description))
        set_(
            self,
            "metrics",
            tuple(METRICS.canonical(metric) for metric in self.metrics),
        )
        set_(
            self,
            "attacks",
            tuple(ATTACKS.canonical(attack) for attack in self.attacks),
        )
        set_(self, "degrees", tuple(float(degree) for degree in self.degrees))
        set_(
            self, "fractions", tuple(float(fraction) for fraction in self.fractions)
        )
        set_(self, "group_sizes", tuple(int(m) for m in self.group_sizes))
        set_(self, "localizer", LOCALIZERS.canonical(self.localizer))
        set_(
            self,
            "localizers",
            tuple(LOCALIZERS.canonical(scheme) for scheme in self.localizers),
        )
        set_(self, "false_positive_rate", float(self.false_positive_rate))
        check_fraction("false_positive_rate", self.false_positive_rate)
        if self.timeline is not None and not isinstance(self.timeline, TimelineSpec):
            set_(self, "timeline", TimelineSpec.from_dict(dict(self.timeline)))
        if not (self.metrics and self.attacks and self.degrees and self.fractions):
            raise ValueError("every scenario axis needs at least one value")
        for fraction in self.fractions:
            check_fraction("compromised fraction", fraction)
        for degree in self.degrees:
            if degree < 0:
                raise ValueError("degrees of damage must be >= 0")

    # -- grid compilation --------------------------------------------------

    def points(
        self, shard: Optional[Tuple[int, int]] = None
    ) -> List[SweepPoint]:
        """The spec's grid, compiled for :class:`SweepRunner`.

        *shard* — an ``(index, count)`` pair — restricts the grid to one
        deterministic slice (see
        :func:`~repro.experiments.sweep.shard_points`); the slices of a
        fleet are disjoint and union to the full grid.
        """
        points = SweepRunner.grid(
            self.metrics, self.attacks, self.degrees, self.fractions
        )
        if shard is not None:
            points = shard_points(points, *shard)
        return points

    @property
    def grid_size(self) -> int:
        """Number of sweep points (per density value)."""
        size = 1
        for axis in _AXIS_FIELDS:
            size *= len(getattr(self, axis))
        return size

    def density_values(self) -> Tuple[int, ...]:
        """The density axis (the config's own ``m`` when none is given)."""
        return self.group_sizes or (self.config.group_size,)

    def localizer_values(self) -> Tuple[str, ...]:
        """The localizer axis (the single ``localizer`` when none is given)."""
        return self.localizers or (self.localizer,)

    @property
    def beacons(self) -> Optional[BeaconSpec]:
        """The beacon spec carried by the config (``None`` = no beacons)."""
        return self.config.beacons

    @property
    def backend_spec(self) -> Optional[BackendSpec]:
        """The backend spec carried by the config (``None`` = numpy)."""
        return self.config.backend

    # -- session construction ----------------------------------------------

    def session(
        self,
        *,
        group_size: Optional[int] = None,
        localizer: Optional[str] = None,
        store: Union[ArtifactStore, str, None] = None,
    ) -> LadSession:
        """A :class:`LadSession` for this spec.

        *group_size* / *localizer* pin one value of the density and
        localizer axes (defaults: the config's density, the spec's single
        ``localizer``).
        """
        config = self.config
        if group_size is not None:
            config = config.with_group_size(int(group_size))
        return LadSession(
            config, localizer=localizer or self.localizer, store=store
        )

    def sessions(
        self, *, store: Union[ArtifactStore, str, None] = None
    ) -> List[Tuple[int, LadSession]]:
        """One ``(group_size, session)`` pair per density value."""
        return [
            (m, self.session(group_size=m, store=store))
            for m in self.density_values()
        ]

    # -- figure rendering --------------------------------------------------

    def figure(
        self,
        *,
        figure_id: Optional[str] = None,
        session=None,
        workers: int = 0,
        density_workers: int = 0,
        store: Union[ArtifactStore, str, None] = None,
    ):
        """Evaluate this spec end to end as one of the paper's figures.

        The renderer is selected by *figure_id* (default: the spec's
        ``name``, so a spec named ``"fig7"`` renders as Figure 7) and the
        result is the same :class:`~repro.experiments.results.FigureResult`
        the ``lad-repro figure`` drivers emit.  Raises ``KeyError`` when no
        renderer is registered under that id.
        """
        from repro.experiments.figures.common import run_figure_spec

        return run_figure_spec(
            self,
            figure_id=figure_id,
            session=session,
            workers=workers,
            density_workers=density_workers,
            store=store,
        )

    # -- derivation --------------------------------------------------------

    def scaled(self, scale: float) -> "ScenarioSpec":
        """The spec with its Monte-Carlo sample sizes scaled (quick runs)."""
        if scale == 1.0:
            return self
        return replace(self, config=self.config.scaled(scale))

    def with_config(self, config: SimulationConfig) -> "ScenarioSpec":
        """The spec over a different simulation configuration."""
        return replace(self, config=config)

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON/TOML-ready; lossless round trip).

        The config's :class:`BeaconSpec` and :class:`BackendSpec` are
        lifted out of the ``config`` table into top-level ``beacons`` and
        ``backend`` entries (the ``[beacons]``/``[backend]`` tables of
        spec files); each is omitted entirely when not configured.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "metrics": list(self.metrics),
            "attacks": list(self.attacks),
            "degrees": list(self.degrees),
            "fractions": list(self.fractions),
            "group_sizes": list(self.group_sizes),
            "localizer": self.localizer,
            "localizers": list(self.localizers),
            "false_positive_rate": self.false_positive_rate,
            "config": {
                f.name: getattr(self.config, f.name)
                for f in fields(SimulationConfig)
                if f.name not in ("beacons", "backend")
            },
        }
        if self.timeline is not None:
            data["timeline"] = self.timeline.as_dict()
        if self.config.beacons is not None:
            data["beacons"] = self.config.beacons.as_dict()
        if self.config.backend is not None:
            data["backend"] = self.config.backend.as_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`as_dict` form.

        Unknown keys raise (catching typos in hand-written spec files);
        the ``config`` and ``beacons`` tables may be partial — omitted
        fields keep their defaults.
        """
        data = dict(data)
        config_data = dict(data.pop("config", {}))
        beacon_data = data.pop("beacons", None)
        config_beacons = config_data.pop("beacons", None)
        if beacon_data is not None and config_beacons is not None:
            raise ValueError(
                "beacons given both top-level and inside [config]; "
                "keep a single [beacons] table"
            )
        if beacon_data is None:
            beacon_data = config_beacons
        backend_data = data.pop("backend", None)
        config_backend = config_data.pop("backend", None)
        if backend_data is not None and config_backend is not None:
            raise ValueError(
                "backend given both top-level and inside [config]; "
                "keep a single [backend] table"
            )
        if backend_data is None:
            backend_data = config_backend
        known = {f.name for f in fields(cls) if f.name != "config"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                "expected a subset of "
                f"{sorted(known | {'backend', 'beacons', 'config'})}"
            )
        unknown_config = set(config_data) - {
            f.name for f in fields(SimulationConfig)
        }
        if unknown_config:
            raise ValueError(
                f"unknown config field(s) {sorted(unknown_config)}"
            )
        if beacon_data is not None and not isinstance(beacon_data, BeaconSpec):
            beacon_data = BeaconSpec.from_dict(dict(beacon_data))
        if backend_data is not None and not isinstance(backend_data, BackendSpec):
            if isinstance(backend_data, str):
                backend_data = BackendSpec(name=backend_data)
            else:
                backend_data = BackendSpec.from_dict(dict(backend_data))
        return cls(
            config=SimulationConfig(
                beacons=beacon_data, backend=backend_data, **config_data
            ),
            **data,
        )

    def to_json(self, path: Optional[Path] = None, *, indent: int = 2) -> str:
        """Serialise to JSON, optionally writing to *path*."""
        text = json.dumps(self.as_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def to_toml(self, path: Optional[Path] = None) -> str:
        """Serialise to TOML, optionally writing to *path*."""
        data = self.as_dict()
        config_data = data.pop("config")
        beacon_data = data.pop("beacons", None)
        backend_data = data.pop("backend", None)
        timeline_data = data.pop("timeline", None)
        lines = [f"{key} = {_toml_value(value)}" for key, value in data.items()]
        if beacon_data is not None:
            lines += ["", "[beacons]"]
            lines += [
                f"{key} = {_toml_value(value)}"
                for key, value in beacon_data.items()
            ]
        if backend_data is not None:
            lines += ["", "[backend]"]
            lines += [
                f"{key} = {_toml_value(value)}"
                for key, value in backend_data.items()
            ]
        if timeline_data is not None:
            event_tables = timeline_data.pop("events", [])
            lines += ["", "[timeline]"]
            lines += [
                f"{key} = {_toml_value(value)}"
                for key, value in timeline_data.items()
            ]
            for event in event_tables:
                lines += ["", "[[timeline.events]]"]
                lines += [
                    f"{key} = {_toml_value(value)}"
                    for key, value in event.items()
                ]
        lines += ["", "[config]"]
        lines += [
            f"{key} = {_toml_value(value)}" for key, value in config_data.items()
        ]
        text = "\n".join(lines) + "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from a JSON document."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from a TOML document."""
        return cls.from_dict(tomllib.loads(text))

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            return cls.from_toml(text)
        if suffix == ".json":
            return cls.from_json(text)
        raise ValueError(
            f"unsupported spec format {path.suffix!r} (use .toml or .json)"
        )

    def to_file(self, path) -> None:
        """Write the spec to a ``.toml`` or ``.json`` file (by suffix)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".toml":
            self.to_toml(path)
        elif suffix == ".json":
            self.to_json(path)
        else:
            raise ValueError(
                f"unsupported spec format {path.suffix!r} (use .toml or .json)"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        axes = " x ".join(
            f"{len(getattr(self, axis))} {axis}" for axis in _AXIS_FIELDS
        )
        densities = (
            f" x {len(self.group_sizes)} densities" if self.group_sizes else ""
        )
        return f"ScenarioSpec({self.name!r}: {axes}{densities})"
