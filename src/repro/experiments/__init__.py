"""Experiment harness that regenerates the paper's evaluation figures.

:class:`~repro.experiments.session.LadSession` runs the end-to-end LAD
pipeline (deploy → train thresholds → attack → score) with aggressive
caching so parameter sweeps reuse networks, observations and training data;
:class:`~repro.experiments.scenario.ScenarioSpec` is the declarative,
TOML/JSON-serialisable description of a sweep that compiles onto the
session's :class:`~repro.experiments.sweep.SweepRunner`; and
:class:`~repro.experiments.store.ArtifactStore` persists trained state so
repeated sweeps skip the training pass.  The
:mod:`repro.experiments.figures` sub-package contains one module per figure
of the paper (Figures 4–9), each exposing a declarative ``spec()`` plus a
``run()`` function with parameters matching the paper's, scaled down by a
``scale`` factor for quick benchmark runs.
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.store import ArtifactStore, fingerprint_key
from repro.experiments.results import SeriesResult, PanelResult, FigureResult
from repro.experiments.reporting import format_figure, format_panel
from repro.experiments.manifest import SweepManifest, SweepProgress
from repro.experiments.sweep import (
    SweepPoint,
    SweepRunner,
    shard_of_point,
    shard_points,
)
from repro.experiments import figures

__all__ = [
    "SimulationConfig",
    "LadSession",
    "ScenarioSpec",
    "ArtifactStore",
    "fingerprint_key",
    "SeriesResult",
    "PanelResult",
    "FigureResult",
    "SweepPoint",
    "SweepRunner",
    "SweepManifest",
    "SweepProgress",
    "shard_of_point",
    "shard_points",
    "format_figure",
    "format_panel",
    "figures",
]
