"""Experiment harness that regenerates the paper's evaluation figures.

:class:`~repro.experiments.harness.LadSimulation` runs the end-to-end LAD
pipeline (deploy → train thresholds → attack → score) with aggressive
caching so parameter sweeps reuse networks, observations and training data.
The :mod:`repro.experiments.figures` sub-package contains one module per
figure of the paper (Figures 4–9), each exposing a ``run()`` function and a
set of default parameters matching the paper's, scaled down by a
``scale`` factor for quick benchmark runs.
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.harness import LadSimulation
from repro.experiments.results import SeriesResult, PanelResult, FigureResult
from repro.experiments.reporting import format_figure, format_panel
from repro.experiments.sweep import SweepPoint, SweepRunner
from repro.experiments import figures

__all__ = [
    "SimulationConfig",
    "LadSimulation",
    "SeriesResult",
    "PanelResult",
    "FigureResult",
    "SweepPoint",
    "SweepRunner",
    "format_figure",
    "format_panel",
    "figures",
]
