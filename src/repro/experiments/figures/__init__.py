"""Per-figure experiment definitions.

Each module exposes

* ``spec(config=None, scale=1.0, ...)`` — the figure's evaluation as a
  declarative :class:`~repro.experiments.scenario.ScenarioSpec`;
* ``run(simulation=None, config=None, scale=1.0, ...)`` — runs that spec
  through a :class:`~repro.experiments.session.LadSession` and returns a
  :class:`~repro.experiments.results.FigureResult` with the same panels
  and series as the corresponding figure in the paper.

``scale`` shrinks the Monte-Carlo sample sizes for quick runs (the
benchmarks use a small scale; the defaults approximate the paper's
statistical quality).

Use :func:`get_figure` / :func:`run_figure` to look figures up by id
(``"fig4"`` … ``"fig9"``, plus ``"figl"`` — this reproduction's own
cross-localizer comparison — ``"figm"`` — the localizer × attack
robustness matrix — and ``"figt"`` — the temporal
delivery/detection-rate-over-time figure); :data:`FIGURE_SPECS` maps ids to their spec
builders (e.g. to write them out as TOML files for ``lad-repro sweep``)
and :data:`FIGURE_RENDERERS` to their ``render(spec, ...)`` functions —
:func:`repro.experiments.figures.common.run_figure_spec` (the engine
behind ``lad-repro sweep --figures``) dispatches through the latter.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.figures import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    figl,
    figm,
    figt,
)
from repro.experiments.figures.common import run_figure_spec
from repro.experiments.results import FigureResult
from repro.experiments.scenario import ScenarioSpec

__all__ = [
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "figl",
    "figm",
    "figt",
    "FIGURES",
    "FIGURE_SPECS",
    "FIGURE_RENDERERS",
    "get_figure",
    "run_figure",
    "run_figure_spec",
]

#: Registry mapping figure ids to their ``run`` functions.
FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "figl": figl.run,
    "figm": figm.run,
    "figt": figt.run,
}

#: Registry mapping figure ids to their declarative spec builders.
FIGURE_SPECS: Dict[str, Callable[..., ScenarioSpec]] = {
    "fig4": fig4.spec,
    "fig5": fig5.spec,
    "fig6": fig6.spec,
    "fig7": fig7.spec,
    "fig8": fig8.spec,
    "fig9": fig9.spec,
    "figl": figl.spec,
    "figm": figm.spec,
    "figt": figt.spec,
}

#: Registry mapping figure ids to their spec renderers
#: (``render(spec, *, session=None, workers=0, density_workers=0,
#: store=None)`` → :class:`FigureResult`).
FIGURE_RENDERERS: Dict[str, Callable[..., FigureResult]] = {
    "fig4": fig4.render,
    "fig5": fig5.render,
    "fig6": fig6.render,
    "fig7": fig7.render,
    "fig8": fig8.render,
    "fig9": fig9.render,
    "figl": figl.render,
    "figm": figm.render,
    "figt": figt.render,
}


def get_figure(figure_id: str) -> Callable[..., FigureResult]:
    """Return the ``run`` function of a figure by id (e.g. ``"fig7"``)."""
    key = figure_id.strip().lower()
    if key not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        )
    return FIGURES[key]


def run_figure(figure_id: str, **kwargs) -> FigureResult:
    """Run the experiment reproducing *figure_id* and return its result."""
    return get_figure(figure_id)(**kwargs)
