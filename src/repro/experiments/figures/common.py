"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from typing import Optional, Sequence


from repro.core.roc import RocCurve
from repro.experiments.config import SimulationConfig
from repro.experiments.harness import LadSimulation
from repro.experiments.results import SeriesResult

__all__ = [
    "resolve_simulation",
    "roc_series",
    "DEFAULT_ROC_FP_GRID",
]

#: False-positive grid at which ROC curves are sampled when rendered as
#: series (the paper's ROC plots span 0 .. ~1 with most action below 0.2).
DEFAULT_ROC_FP_GRID: tuple[float, ...] = (
    0.0,
    0.005,
    0.01,
    0.02,
    0.05,
    0.10,
    0.15,
    0.20,
    0.30,
    0.40,
    0.50,
    0.75,
    1.0,
)


def resolve_simulation(
    simulation: Optional[LadSimulation] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
) -> LadSimulation:
    """Build (or pass through) the :class:`LadSimulation` a figure should use.

    Precedence: an explicit *simulation* wins; otherwise a new one is built
    from *config* (or the paper defaults) with its sample sizes scaled by
    *scale*.
    """
    if simulation is not None:
        return simulation
    cfg = config or SimulationConfig()
    if scale != 1.0:
        cfg = cfg.scaled(scale)
    return LadSimulation(cfg)


def roc_series(
    label: str,
    roc: RocCurve,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
) -> SeriesResult:
    """Sample an ROC curve on a fixed false-positive grid as a series."""
    ys = [roc.detection_rate_at(fp) for fp in fp_grid]
    return SeriesResult(label=label, x=list(fp_grid), y=ys)
