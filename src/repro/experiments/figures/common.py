"""Shared engine for the spec-driven figure modules.

Every figure of the paper's evaluation section is a
:class:`~repro.experiments.scenario.ScenarioSpec` plus a presentation
shape: which axis forms the panels, which axis forms the series, and
whether the series sample ROC curves (Figures 4–6) or detection rates at
a fixed false-positive budget (Figures 7–9).  The helpers here run a
spec's grid through a :class:`~repro.experiments.session.LadSession` /
:class:`~repro.experiments.sweep.SweepRunner` and fold the scored points
into :class:`~repro.experiments.results.FigureResult` containers, so the
per-figure modules reduce to a spec builder plus one render call.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.roc import RocCurve
from repro.experiments.config import SimulationConfig
from repro.experiments.results import FigureResult, PanelResult, SeriesResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.store import ArtifactStore
from repro.experiments.sweep import SweepPoint

__all__ = [
    "resolve_session",
    "resolve_simulation",
    "resolve_store_root",
    "roc_series",
    "run_roc_figure",
    "run_rate_figure",
    "run_figure_spec",
    "DEFAULT_ROC_FP_GRID",
]


def resolve_store_root(store: Union[ArtifactStore, str, None]) -> Optional[str]:
    """Normalise a store argument to its root path.

    The path form is what figure drivers ship to worker processes: each
    worker re-opens the store by path (content is shared on disk, the
    hit/miss counters stay per-process).
    """
    if store is None:
        return None
    if isinstance(store, ArtifactStore):
        return str(store.root)
    return str(store)

#: False-positive grid at which ROC curves are sampled when rendered as
#: series (the paper's ROC plots span 0 .. ~1 with most action below 0.2).
DEFAULT_ROC_FP_GRID: tuple[float, ...] = (
    0.0,
    0.005,
    0.01,
    0.02,
    0.05,
    0.10,
    0.15,
    0.20,
    0.30,
    0.40,
    0.50,
    0.75,
    1.0,
)


def resolve_session(
    session: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    spec: Optional[ScenarioSpec] = None,
    store: Union[ArtifactStore, str, None] = None,
) -> LadSession:
    """Build (or pass through) the :class:`LadSession` a figure should use.

    Precedence: an explicit *session* wins; otherwise a new one is built
    from *spec* (when given) or *config* (or the paper defaults) with its
    sample sizes scaled by *scale*.
    """
    if session is not None:
        return session
    if spec is not None:
        if config is not None:
            spec = spec.with_config(config)
        return spec.scaled(scale).session(store=store)
    cfg = config or SimulationConfig()
    if scale != 1.0:
        cfg = cfg.scaled(scale)
    return LadSession(cfg, store=store)


#: Backwards-compatible name from the pre-session API.
resolve_simulation = resolve_session


def run_figure_spec(
    spec: ScenarioSpec,
    *,
    figure_id: Optional[str] = None,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store: Union[ArtifactStore, str, None] = None,
) -> FigureResult:
    """Evaluate a figure-shaped spec end to end and render its figure.

    The renderer is looked up by *figure_id* — defaulting to ``spec.name``,
    so any spec named after a registered figure (``"fig4"`` … ``"fig9"``)
    renders directly — and produces the same
    :class:`~repro.experiments.results.FigureResult` (panels, series,
    parameters) as the corresponding ``run`` driver.  This is what
    ``lad-repro sweep --figures`` runs, with ``--cache-dir`` adding the
    per-point attacked-score cache underneath.
    """
    from repro.experiments.figures import FIGURE_RENDERERS

    key = (figure_id or spec.name).strip().lower()
    renderer = FIGURE_RENDERERS.get(key)
    if renderer is None:
        raise KeyError(
            f"no figure renderer named {key!r}; "
            f"available: {sorted(FIGURE_RENDERERS)}"
        )
    return renderer(
        spec,
        session=session,
        workers=workers,
        density_workers=density_workers,
        store=store,
    )


def roc_series(
    label: str,
    roc: RocCurve,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
) -> SeriesResult:
    """Sample an ROC curve on a fixed false-positive grid as a series."""
    ys = [roc.detection_rate_at(fp) for fp in fp_grid]
    return SeriesResult(label=label, x=list(fp_grid), y=ys)


def _axis_point(
    spec: ScenarioSpec,
    *,
    metric: Optional[str] = None,
    attack: Optional[str] = None,
    degree: Optional[float] = None,
    fraction: Optional[float] = None,
) -> SweepPoint:
    """A :class:`SweepPoint` of the spec's grid, defaulting singleton axes."""
    return SweepPoint(
        metric if metric is not None else spec.metrics[0],
        attack if attack is not None else spec.attacks[0],
        float(degree if degree is not None else spec.degrees[0]),
        float(fraction if fraction is not None else spec.fractions[0]),
    )


def run_roc_figure(
    spec: ScenarioSpec,
    *,
    figure_id: str,
    title: str,
    series_axis: str,
    series_label: Callable[[str], str],
    parameters: Optional[Dict] = None,
    session: Optional[LadSession] = None,
    workers: int = 0,
    store: Union[ArtifactStore, str, None] = None,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
) -> FigureResult:
    """Render a ROC-shaped figure (Figures 4–6): panels per degree of damage.

    Parameters
    ----------
    series_axis:
        ``"metrics"`` or ``"attacks"`` — the spec axis forming the curves
        of each panel (the other one must be a singleton).
    series_label:
        Maps a canonical component name to its legend label.
    """
    sim = resolve_session(session, spec=spec, store=store)
    runner = sim.sweep(workers=workers)
    rocs = runner.rocs(spec.points())

    figure = FigureResult(
        figure_id=figure_id, title=title, parameters=dict(parameters or {})
    )
    for degree in spec.degrees:
        panel = PanelResult(
            title=f"D={degree:g}",
            x_label="FP-False Positive Rate",
            y_label="DR-Detection Rate",
        )
        for value in getattr(spec, series_axis):
            point = _axis_point(
                spec,
                degree=degree,
                **{series_axis.rstrip("s"): value},
            )
            panel.add_series(roc_series(series_label(value), rocs[point], fp_grid))
        figure.add_panel(panel)
    return figure


def run_rate_figure(
    spec: ScenarioSpec,
    *,
    figure_id: str,
    title: str,
    panel_title: str,
    x_axis: str,
    x_label: str,
    series_axis: str,
    series_label: Callable[[float], str],
    x_transform: Callable[[float], float] = float,
    parameters: Optional[Dict] = None,
    session: Optional[LadSession] = None,
    workers: int = 0,
    store: Union[ArtifactStore, str, None] = None,
) -> FigureResult:
    """Render a fixed-FP detection-rate figure (Figures 7 and 8).

    One panel; *x_axis* (``"degrees"`` or ``"fractions"``) runs along the
    x axis and *series_axis* forms the curves.  Detection rates are read
    at the spec's ``false_positive_rate``.
    """
    sim = resolve_session(session, spec=spec, store=store)
    runner = sim.sweep(workers=workers)
    rates_at = runner.detection_rates(
        spec.points(), false_positive_rate=spec.false_positive_rate
    )

    figure = FigureResult(
        figure_id=figure_id, title=title, parameters=dict(parameters or {})
    )
    panel = PanelResult(
        title=panel_title, x_label=x_label, y_label="DR-Detection Rate"
    )
    axis_kw = {"degrees": "degree", "fractions": "fraction"}
    for series_value in getattr(spec, series_axis):
        rates = [
            rates_at[
                _axis_point(
                    spec,
                    **{
                        axis_kw[series_axis]: series_value,
                        axis_kw[x_axis]: x_value,
                    },
                )
            ].detection_rate
            for x_value in getattr(spec, x_axis)
        ]
        panel.add_series(
            SeriesResult(
                label=series_label(series_value),
                x=[x_transform(x_value) for x_value in getattr(spec, x_axis)],
                y=rates,
            )
        )
    figure.add_panel(panel)
    return figure
