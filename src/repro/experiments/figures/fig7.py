"""Figure 7 — Detection rate vs degree of damage (``DR-D-x``).

Setup (paper Section 7.6): false-positive budget 1 %, m = 300, Diff metric,
Dec-Bounded attacks; one curve per compromise fraction x ∈ {10, 20, 30} %;
the degree of damage D sweeps 40 .. 160 m.

Expected qualitative outcome: the detection rate is low for small D (the
attack hides inside the localization scheme's own error) and approaches
100 % as D grows, for every compromise level.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_session, run_rate_figure
from repro.experiments.results import FigureResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession

__all__ = [
    "run",
    "render",
    "spec",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTIONS",
    "FALSE_POSITIVE_RATE",
    "METRIC",
    "ATTACK_CLASS",
]

#: Swept degrees of damage (x axis).
DEGREES_OF_DAMAGE: tuple[float, ...] = (40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0)

#: Compromise fractions (one curve each).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.10, 0.20, 0.30)

#: False-positive budget at which the detection rate is read.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric and attack class of the figure.
METRIC: str = "diff"
ATTACK_CLASS: str = "dec_bounded"


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return ScenarioSpec(
        name="fig7",
        description="Detection rate vs degree of damage",
        metrics=(METRIC,),
        attacks=(ATTACK_CLASS,),
        degrees=tuple(degrees),
        fractions=tuple(fractions),
        false_positive_rate=false_positive_rate,
        config=config or SimulationConfig(),
    ).scaled(scale)


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Render Figure 7 from an already-built scenario spec."""
    del density_workers  # single-density figure
    session = resolve_session(session, spec=scenario, store=store)
    return run_rate_figure(
        scenario,
        figure_id="fig7",
        title="Detection rate vs degree of damage",
        panel_title="DR-D-x",
        x_axis="degrees",
        x_label="The Degree of Damage D",
        series_axis="fractions",
        series_label=lambda fraction: f"x={int(round(fraction * 100))}%",
        parameters={
            "false_positive_rate": scenario.false_positive_rate,
            "group_size": session.config.group_size,
            "metric": scenario.metrics[0],
            "attack": scenario.attacks[0],
        },
        session=session,
        workers=workers,
    )


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce Figure 7 and return its series."""
    return render(
        spec(
            config,
            scale,
            degrees=degrees,
            fractions=fractions,
            false_positive_rate=false_positive_rate,
        ),
        session=simulation,
        workers=workers,
        store=store,
    )
