"""Figure 7 — Detection rate vs degree of damage (``DR-D-x``).

Setup (paper Section 7.6): false-positive budget 1 %, m = 300, Diff metric,
Dec-Bounded attacks; one curve per compromise fraction x ∈ {10, 20, 30} %;
the degree of damage D sweeps 40 .. 160 m.

Expected qualitative outcome: the detection rate is low for small D (the
attack hides inside the localization scheme's own error) and approaches
100 % as D grows, for every compromise level.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_simulation
from repro.experiments.harness import LadSimulation
from repro.experiments.results import FigureResult, PanelResult, SeriesResult
from repro.experiments.sweep import SweepPoint, SweepRunner

__all__ = [
    "run",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTIONS",
    "FALSE_POSITIVE_RATE",
    "METRIC",
    "ATTACK_CLASS",
]

#: Swept degrees of damage (x axis).
DEGREES_OF_DAMAGE: tuple[float, ...] = (40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0)

#: Compromise fractions (one curve each).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.10, 0.20, 0.30)

#: False-positive budget at which the detection rate is read.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric and attack class of the figure.
METRIC: str = "diff"
ATTACK_CLASS: str = "dec_bounded"


def run(
    simulation: Optional[LadSimulation] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
) -> FigureResult:
    """Reproduce Figure 7 and return its series."""
    sim = resolve_simulation(simulation, config, scale)
    runner = sim.sweep(workers=workers)
    points = SweepRunner.grid([METRIC], [ATTACK_CLASS], degrees, fractions)
    rates_at = runner.detection_rates(points, false_positive_rate=false_positive_rate)

    figure = FigureResult(
        figure_id="fig7",
        title="Detection rate vs degree of damage",
        parameters={
            "false_positive_rate": false_positive_rate,
            "group_size": sim.config.group_size,
            "metric": METRIC,
            "attack": ATTACK_CLASS,
        },
    )
    panel = PanelResult(
        title="DR-D-x",
        x_label="The Degree of Damage D",
        y_label="DR-Detection Rate",
    )
    for fraction in fractions:
        rates = [
            rates_at[
                SweepPoint(METRIC, ATTACK_CLASS, float(degree), float(fraction))
            ][0]
            for degree in degrees
        ]
        panel.add_series(
            SeriesResult(
                label=f"x={int(round(fraction * 100))}%",
                x=list(degrees),
                y=rates,
            )
        )
    figure.add_panel(panel)
    return figure
