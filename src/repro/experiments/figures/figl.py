"""Figure L — Detection rate vs degree of damage per localization scheme.

A cross-localizer comparison that is not in the paper but directly supports
its Section 7.2 discussion: LAD is agnostic to the localization scheme, and
the trained thresholds absorb each scheme's own benign error.  This figure
trains LAD behind every scheme on the ``localizers`` axis (beacon-based
schemes get the scenario's ``[beacons]`` infrastructure) and reads the
detection rate at a fixed false-positive budget across the degree of
damage — one curve per scheme, one panel per compromise fraction.

Each localizer needs its own threshold-training pass (that is what makes
the comparison meaningful), so the localizer axis dominates the cost; with
``density_workers`` it fans out across worker processes exactly like the
density axis of Figure 9, and with an artifact store attached every
scheme's trained state persists independently (the artifact keys carry the
localizer identity and the beacon fingerprint, so the schemes never share
warm artifacts).

Expected qualitative outcome: the coarser a scheme's benign localization
error, the looser its trained thresholds and the lower its detection rate
at small D — the beaconless MLE detects the earliest, the coarse range-free
baselines the latest.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

from repro.core.evaluation import DetectionOutcome
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_store_root
from repro.localization.base import LOCALIZERS
from repro.localization.beacons import BeaconSpec
from repro.experiments.results import FigureResult, PanelResult, SeriesResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.sweep import FAN_OUT_ERRORS, SweepPoint

__all__ = [
    "run",
    "render",
    "spec",
    "LOCALIZERS_COMPARED",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTIONS",
    "FALSE_POSITIVE_RATE",
    "METRIC",
    "ATTACK_CLASS",
]

#: Localization schemes compared (one curve each).
LOCALIZERS_COMPARED: tuple[str, ...] = (
    "beaconless",
    "centroid",
    "mmse",
    "dvhop",
    "apit",
)

#: Degrees of damage along the x axis.
DEGREES_OF_DAMAGE: tuple[float, ...] = (40.0, 80.0, 120.0, 160.0)

#: Compromise fractions (one panel each).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.10,)

#: False-positive budget at which the detection rate is read.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric and attack class of the figure.
METRIC: str = "diff"
ATTACK_CLASS: str = "dec_bounded"


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    localizers: Sequence[str] = LOCALIZERS_COMPARED,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return ScenarioSpec(
        name="figl",
        description="Detection rate vs degree of damage per localization scheme",
        metrics=(METRIC,),
        attacks=(ATTACK_CLASS,),
        degrees=tuple(degrees),
        fractions=tuple(fractions),
        localizers=tuple(localizers),
        false_positive_rate=false_positive_rate,
        config=config or SimulationConfig(),
    ).scaled(scale)


def _effective_beacons(scenario: ScenarioSpec) -> Optional[dict]:
    """The beacon spec the sessions will actually deploy (for reporting).

    Sessions running a beacon-based scheme fall back to the
    :class:`BeaconSpec` defaults when the scenario carries none, so the
    figure parameters record that effective spec instead of ``None``.
    """
    if scenario.beacons is not None:
        return scenario.beacons.as_dict()
    needs_beacons = any(
        LOCALIZERS.get(name).requires_beacons
        for name in scenario.localizer_values()
    )
    return BeaconSpec().as_dict() if needs_beacons else None


def _localizer_rates(
    args: Tuple[ScenarioSpec, str, Optional[str]],
) -> Tuple[str, Dict[SweepPoint, DetectionOutcome]]:
    """Detection rates of one localization scheme (its own training pass).

    Module-level so the localizer fan-out can ship it to worker processes;
    every stream inside is derived from the config seed and parameter
    names, so the result is independent of where the schemes run.  Workers
    re-open the artifact store by path (counters stay per-process, content
    is shared).
    """
    scenario, localizer, store_root = args
    session = scenario.session(localizer=localizer, store=store_root)
    rates = session.sweep(workers=0).detection_rates(
        scenario.points(), false_positive_rate=scenario.false_positive_rate
    )
    return localizer, rates


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Render figure L from an already-built scenario spec.

    The *session* argument is ignored (each localizer needs its own
    threshold training); it is accepted for interface uniformity with the
    other figure renderers.

    Parameters
    ----------
    workers:
        Worker processes for the per-scheme ``(D, x)`` sweep (only used
        when ``density_workers`` is off).
    density_workers:
        When ``> 1``, fan the *localizer axis* over this many worker
        processes instead — every scheme's training pass is independent,
        which is the axis worth parallelising here.  Results are identical
        to the serial run; platforms without process support fall back to
        the serial path with a warning.
    """
    del session

    figure = FigureResult(
        figure_id="figl",
        title="Detection rate vs degree of damage per localization scheme",
        parameters={
            "false_positive_rate": scenario.false_positive_rate,
            "metric": scenario.metrics[0],
            "attack": scenario.attacks[0],
            "beacons": _effective_beacons(scenario),
        },
    )

    rates_at: Dict[str, Dict[SweepPoint, DetectionOutcome]] = {}
    store_root = resolve_store_root(store)
    tasks = [
        (scenario, localizer, store_root)
        for localizer in scenario.localizer_values()
    ]
    if density_workers > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=min(density_workers, len(tasks))
            ) as pool:
                rates_at = dict(pool.map(_localizer_rates, tasks))
        except FAN_OUT_ERRORS as exc:
            warnings.warn(
                f"localizer fan-out unavailable on this platform ({exc!r}); "
                "running the schemes serially",
                RuntimeWarning,
                stacklevel=2,
            )
            rates_at = {}
    if not rates_at:
        for localizer in scenario.localizer_values():
            sess = scenario.session(localizer=localizer, store=store_root)
            rates_at[localizer] = sess.sweep(workers=workers).detection_rates(
                scenario.points(),
                false_positive_rate=scenario.false_positive_rate,
            )

    for fraction in scenario.fractions:
        panel = PanelResult(
            title=f"x={int(round(fraction * 100))}%",
            x_label="D-Degree of Damage (m)",
            y_label="DR-Detection Rate",
        )
        for localizer in scenario.localizer_values():
            rates = [
                rates_at[localizer][
                    SweepPoint(
                        scenario.metrics[0],
                        scenario.attacks[0],
                        float(degree),
                        float(fraction),
                    )
                ].detection_rate
                for degree in scenario.degrees
            ]
            panel.add_series(
                SeriesResult(
                    label=localizer,
                    x=[float(degree) for degree in scenario.degrees],
                    y=rates,
                )
            )
        figure.add_panel(panel)
    return figure


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    localizers: Sequence[str] = LOCALIZERS_COMPARED,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce figure L and return its series (see :func:`render`)."""
    return render(
        spec(
            config,
            scale,
            localizers=localizers,
            degrees=degrees,
            fractions=fractions,
            false_positive_rate=false_positive_rate,
        ),
        session=simulation,
        workers=workers,
        density_workers=density_workers,
        store=store,
    )
