"""Figure 4 — ROC curves for the three detection metrics (``DR-FP-M-D``).

Setup (paper Section 7.4): x = 10 % compromised neighbours, m = 300 sensors
per group, Dec-Bounded attacks; one panel per degree of damage
D ∈ {80, 120, 160}; one curve per metric (Diff, Add-all, Probability).

Expected qualitative outcome: the Diff metric dominates the other two; all
metrics sharpen rapidly as D grows; at D = 160 the Diff metric reaches
~100 % detection at ~0 false positives.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics import ALL_METRICS, METRICS
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import (
    DEFAULT_ROC_FP_GRID,
    resolve_session,
    run_roc_figure,
)
from repro.experiments.results import FigureResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession

__all__ = [
    "run",
    "render",
    "spec",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTION",
    "ATTACK_CLASS",
]

#: Degrees of damage of the three panels.
DEGREES_OF_DAMAGE: tuple[float, ...] = (80.0, 120.0, 160.0)

#: Fraction of compromised neighbours.
COMPROMISED_FRACTION: float = 0.10

#: Attack class used throughout the figure.
ATTACK_CLASS: str = "dec_bounded"


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return ScenarioSpec(
        name="fig4",
        description="ROC curves per detection metric and degree of damage",
        metrics=tuple(metric.name for metric in ALL_METRICS),
        attacks=(ATTACK_CLASS,),
        degrees=tuple(degrees),
        fractions=(COMPROMISED_FRACTION,),
        config=config or SimulationConfig(),
    ).scaled(scale)


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
) -> FigureResult:
    """Render Figure 4 from an already-built scenario spec."""
    del density_workers  # single-density figure
    session = resolve_session(session, spec=scenario, store=store)
    return run_roc_figure(
        scenario,
        figure_id="fig4",
        title="ROC curves for different detection metrics and degrees of damage",
        series_axis="metrics",
        series_label=lambda name: METRICS.create(name).paper_name,
        parameters={
            "compromised_fraction": scenario.fractions[0],
            "group_size": session.config.group_size,
            "attack": scenario.attacks[0],
        },
        session=session,
        workers=workers,
        fp_grid=fp_grid,
    )


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
    workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce Figure 4 and return its series."""
    return render(
        spec(config, scale, degrees=degrees),
        session=simulation,
        workers=workers,
        store=store,
        fp_grid=fp_grid,
    )
