"""Figure 4 — ROC curves for the three detection metrics (``DR-FP-M-D``).

Setup (paper Section 7.4): x = 10 % compromised neighbours, m = 300 sensors
per group, Dec-Bounded attacks; one panel per degree of damage
D ∈ {80, 120, 160}; one curve per metric (Diff, Add-all, Probability).

Expected qualitative outcome: the Diff metric dominates the other two; all
metrics sharpen rapidly as D grows; at D = 160 the Diff metric reaches
~100 % detection at ~0 false positives.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics import ALL_METRICS
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import (
    DEFAULT_ROC_FP_GRID,
    resolve_simulation,
    roc_series,
)
from repro.experiments.harness import LadSimulation
from repro.experiments.results import FigureResult, PanelResult
from repro.experiments.sweep import SweepPoint, SweepRunner

__all__ = ["run", "DEGREES_OF_DAMAGE", "COMPROMISED_FRACTION", "ATTACK_CLASS"]

#: Degrees of damage of the three panels.
DEGREES_OF_DAMAGE: tuple[float, ...] = (80.0, 120.0, 160.0)

#: Fraction of compromised neighbours.
COMPROMISED_FRACTION: float = 0.10

#: Attack class used throughout the figure.
ATTACK_CLASS: str = "dec_bounded"


def run(
    simulation: Optional[LadSimulation] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
    workers: int = 0,
) -> FigureResult:
    """Reproduce Figure 4 and return its series."""
    sim = resolve_simulation(simulation, config, scale)
    runner = sim.sweep(workers=workers)
    points = SweepRunner.grid(
        ALL_METRICS, [ATTACK_CLASS], degrees, [COMPROMISED_FRACTION]
    )
    rocs = runner.rocs(points)

    figure = FigureResult(
        figure_id="fig4",
        title="ROC curves for different detection metrics and degrees of damage",
        parameters={
            "compromised_fraction": COMPROMISED_FRACTION,
            "group_size": sim.config.group_size,
            "attack": ATTACK_CLASS,
        },
    )
    for degree in degrees:
        panel = PanelResult(
            title=f"D={degree:g}",
            x_label="FP-False Positive Rate",
            y_label="DR-Detection Rate",
        )
        for metric in ALL_METRICS:
            point = SweepPoint(
                metric.name, ATTACK_CLASS, float(degree), COMPROMISED_FRACTION
            )
            panel.add_series(roc_series(metric.paper_name, rocs[point], fp_grid))
        figure.add_panel(panel)
    return figure
