"""Figure 6 — ROC curves for the two attack classes at large D (``DR-FP-T-D``).

Same setup as Figure 5 but with D ∈ {120, 160}.

Expected qualitative outcome: with large degrees of damage the gap between
the Dec-Bounded and Dec-Only attacks closes — both are detected at ≳99 %
with small false-positive rates, which is the paper's argument that the
expensive authentication/wormhole-detection machinery needed to force
Dec-Only behaviour is unnecessary when only high-impact anomalies matter.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import fig5
from repro.experiments.figures.common import DEFAULT_ROC_FP_GRID
from repro.experiments.results import FigureResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession

__all__ = ["run", "render", "spec", "DEGREES_OF_DAMAGE"]

#: Degrees of damage of the two panels.
DEGREES_OF_DAMAGE: tuple[float, ...] = (120.0, 160.0)


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return fig5.spec(config, scale, degrees=degrees, name="fig6")


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
) -> FigureResult:
    """Render Figure 6 from an already-built scenario spec."""
    figure = fig5.render(
        scenario,
        session=session,
        workers=workers,
        density_workers=density_workers,
        store=store,
        fp_grid=fp_grid,
    )
    figure.figure_id = "fig6"
    figure.title = "ROC curves for different attacks (large degrees of damage)"
    return figure


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
    workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce Figure 6 and return its series."""
    return render(
        spec(config, scale, degrees=degrees),
        session=simulation,
        workers=workers,
        store=store,
        fp_grid=fp_grid,
    )
