"""Figure M — The localizer × attack robustness matrix.

Figure L compares every localization scheme under the *one* abstract
Dec-Bounded adversary.  This figure generalises that comparison into a
full matrix: every scheme on the ``localizers`` axis is trained
independently and then evaluated against every attack class on the
``attacks`` axis — the paper's observation-tainting adversaries *and*
the modality-targeted physical-layer attacks of
:mod:`repro.attacks.modality`.  One panel per attack class, one curve
per scheme, detection rate over the degree of damage.

The matrix makes the modality gating visible: an RSSI amplifier read
against DV-Hop produces a flat zero-displacement row (nothing to
detect — the attack is futile against that scheme), while the same
attack against the RSSI path-loss scheme displaces up to its physical
cap and is caught essentially immediately because the victim's
observation stays honest.  The Dec-* columns reproduce Figure L's
ordering for every scheme including the new RSSI/TDOA localizers.

Cost scales as ``len(localizers)`` training passes (each sweeping the
full ``attacks × degrees × fractions`` grid); ``density_workers`` fans
the localizer axis over worker processes exactly like Figure L, and an
attached artifact store keeps every scheme's trained state under its
own modality-aware beacon fingerprint — cross-scheme artifacts are
never shared.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

from repro.core.evaluation import DetectionOutcome
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_store_root
from repro.experiments.figures.figl import _effective_beacons
from repro.experiments.results import FigureResult, PanelResult, SeriesResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.sweep import FAN_OUT_ERRORS, SweepPoint

__all__ = [
    "run",
    "render",
    "spec",
    "LOCALIZERS_COMPARED",
    "ATTACKS_COMPARED",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTIONS",
    "FALSE_POSITIVE_RATE",
    "METRIC",
]

#: Localization schemes down the matrix (one curve each).
LOCALIZERS_COMPARED: tuple[str, ...] = (
    "beaconless",
    "centroid",
    "mmse",
    "dvhop",
    "apit",
    "rssi",
    "tdoa",
)

#: Attack classes across the matrix (one panel each): the paper's
#: strongest observation-tainting adversary plus both modality attacks.
ATTACKS_COMPARED: tuple[str, ...] = ("dec_bounded", "rssi_amp", "tdoa_skew")

#: Degrees of damage along the x axis.
DEGREES_OF_DAMAGE: tuple[float, ...] = (80.0, 160.0)

#: Compromise fractions (the detection-side ``x``; modality attacks
#: ignore it — they never touch the observation).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.10,)

#: False-positive budget at which the detection rate is read.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric of the matrix.
METRIC: str = "diff"


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    localizers: Sequence[str] = LOCALIZERS_COMPARED,
    attacks: Sequence[str] = ATTACKS_COMPARED,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return ScenarioSpec(
        name="figm",
        description="Localizer x attack robustness matrix",
        metrics=(METRIC,),
        attacks=tuple(attacks),
        degrees=tuple(degrees),
        fractions=tuple(fractions),
        localizers=tuple(localizers),
        false_positive_rate=false_positive_rate,
        config=config or SimulationConfig(),
    ).scaled(scale)


def _localizer_rates(
    args: Tuple[ScenarioSpec, str, Optional[str]],
) -> Tuple[str, Dict[SweepPoint, DetectionOutcome]]:
    """Detection rates of one scheme over the full attack grid.

    Module-level so the localizer fan-out can ship it to worker
    processes; every stream inside is derived from the config seed and
    parameter names, so the result is independent of where the schemes
    run.  Workers re-open the artifact store by path (counters stay
    per-process, content is shared).
    """
    scenario, localizer, store_root = args
    session = scenario.session(localizer=localizer, store=store_root)
    rates = session.sweep(workers=0).detection_rates(
        scenario.points(), false_positive_rate=scenario.false_positive_rate
    )
    return localizer, rates


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Render figure M from an already-built scenario spec.

    The *session* argument is ignored (each localizer needs its own
    threshold training); it is accepted for interface uniformity with
    the other figure renderers.

    Parameters
    ----------
    workers:
        Worker processes for the per-scheme attack-grid sweep (only
        used when ``density_workers`` is off).
    density_workers:
        When ``> 1``, fan the *localizer axis* over this many worker
        processes instead — every scheme's training pass is independent,
        which is the axis worth parallelising here.  Results are
        identical to the serial run; platforms without process support
        fall back to the serial path with a warning.
    """
    del session

    figure = FigureResult(
        figure_id="figm",
        title="Localizer x attack robustness matrix",
        parameters={
            "false_positive_rate": scenario.false_positive_rate,
            "metric": scenario.metrics[0],
            "attacks": list(scenario.attacks),
            "localizers": list(scenario.localizer_values()),
            "beacons": _effective_beacons(scenario),
        },
    )

    rates_at: Dict[str, Dict[SweepPoint, DetectionOutcome]] = {}
    store_root = resolve_store_root(store)
    tasks = [
        (scenario, localizer, store_root)
        for localizer in scenario.localizer_values()
    ]
    if density_workers > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=min(density_workers, len(tasks))
            ) as pool:
                rates_at = dict(pool.map(_localizer_rates, tasks))
        except FAN_OUT_ERRORS as exc:
            warnings.warn(
                f"localizer fan-out unavailable on this platform ({exc!r}); "
                "running the schemes serially",
                RuntimeWarning,
                stacklevel=2,
            )
            rates_at = {}
    if not rates_at:
        # Serial path: reuse the caller's store object (when given one) so
        # its hit/miss counters aggregate across the schemes — the CLI's
        # cache summary reads them.  Workers always re-open by path.
        serial_store = store if store is not None else store_root
        for localizer in scenario.localizer_values():
            sess = scenario.session(localizer=localizer, store=serial_store)
            rates_at[localizer] = sess.sweep(workers=workers).detection_rates(
                scenario.points(),
                false_positive_rate=scenario.false_positive_rate,
            )

    for attack in scenario.attacks:
        for fraction in scenario.fractions:
            title = f"attack={attack}"
            if len(scenario.fractions) > 1:
                title += f", x={int(round(fraction * 100))}%"
            panel = PanelResult(
                title=title,
                x_label="D-Degree of Damage (m)",
                y_label="DR-Detection Rate",
            )
            for localizer in scenario.localizer_values():
                rates = [
                    rates_at[localizer][
                        SweepPoint(
                            scenario.metrics[0],
                            attack,
                            float(degree),
                            float(fraction),
                        )
                    ].detection_rate
                    for degree in scenario.degrees
                ]
                panel.add_series(
                    SeriesResult(
                        label=localizer,
                        x=[float(degree) for degree in scenario.degrees],
                        y=rates,
                    )
                )
            figure.add_panel(panel)
    return figure


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    localizers: Sequence[str] = LOCALIZERS_COMPARED,
    attacks: Sequence[str] = ATTACKS_COMPARED,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce figure M and return its series (see :func:`render`)."""
    return render(
        spec(
            config,
            scale,
            localizers=localizers,
            attacks=attacks,
            degrees=degrees,
            fractions=fractions,
            false_positive_rate=false_positive_rate,
        ),
        session=simulation,
        workers=workers,
        density_workers=density_workers,
        store=store,
    )
