"""Figure 8 — Detection rate vs node-compromise percentage (``DR-x-D``).

Setup (paper Section 7.7): false-positive budget 1 %, m = 300, Diff metric,
Dec-Bounded attacks; one curve per degree of damage D ∈ {80, 120, 160}; the
compromise fraction x sweeps 0 .. 60 %.

Expected qualitative outcome: the larger the degree of damage, the more
node compromise the detector tolerates — at D = 160 the detection rate
stays high up to roughly half of the neighbourhood being compromised, while
at D = 80 it degrades much earlier.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_simulation
from repro.experiments.harness import LadSimulation
from repro.experiments.results import FigureResult, PanelResult, SeriesResult
from repro.experiments.sweep import SweepPoint, SweepRunner

__all__ = [
    "run",
    "COMPROMISED_FRACTIONS",
    "DEGREES_OF_DAMAGE",
    "FALSE_POSITIVE_RATE",
    "METRIC",
    "ATTACK_CLASS",
]

#: Swept compromise fractions (x axis, as fractions of the neighbourhood).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60)

#: Degrees of damage (one curve each).
DEGREES_OF_DAMAGE: tuple[float, ...] = (80.0, 120.0, 160.0)

#: False-positive budget at which the detection rate is read.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric and attack class of the figure.
METRIC: str = "diff"
ATTACK_CLASS: str = "dec_bounded"


def run(
    simulation: Optional[LadSimulation] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
) -> FigureResult:
    """Reproduce Figure 8 and return its series."""
    sim = resolve_simulation(simulation, config, scale)
    runner = sim.sweep(workers=workers)
    points = SweepRunner.grid([METRIC], [ATTACK_CLASS], degrees, fractions)
    rates_at = runner.detection_rates(points, false_positive_rate=false_positive_rate)

    figure = FigureResult(
        figure_id="fig8",
        title="Detection rate vs percentage of compromised nodes",
        parameters={
            "false_positive_rate": false_positive_rate,
            "group_size": sim.config.group_size,
            "metric": METRIC,
            "attack": ATTACK_CLASS,
        },
    )
    panel = PanelResult(
        title="DR-x-D",
        x_label="The Percentage of Compromised Nodes",
        y_label="DR-Detection Rate",
    )
    percentages = [fraction * 100.0 for fraction in fractions]
    for degree in degrees:
        rates = [
            rates_at[
                SweepPoint(METRIC, ATTACK_CLASS, float(degree), float(fraction))
            ][0]
            for fraction in fractions
        ]
        panel.add_series(SeriesResult(label=f"D={degree:g}", x=percentages, y=rates))
    figure.add_panel(panel)
    return figure
