"""Figure 8 — Detection rate vs node-compromise percentage (``DR-x-D``).

Setup (paper Section 7.7): false-positive budget 1 %, m = 300, Diff metric,
Dec-Bounded attacks; one curve per degree of damage D ∈ {80, 120, 160}; the
compromise fraction x sweeps 0 .. 60 %.

Expected qualitative outcome: the larger the degree of damage, the more
node compromise the detector tolerates — at D = 160 the detection rate
stays high up to roughly half of the neighbourhood being compromised, while
at D = 80 it degrades much earlier.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_session, run_rate_figure
from repro.experiments.results import FigureResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession

__all__ = [
    "run",
    "render",
    "spec",
    "COMPROMISED_FRACTIONS",
    "DEGREES_OF_DAMAGE",
    "FALSE_POSITIVE_RATE",
    "METRIC",
    "ATTACK_CLASS",
]

#: Swept compromise fractions (x axis, as fractions of the neighbourhood).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60)

#: Degrees of damage (one curve each).
DEGREES_OF_DAMAGE: tuple[float, ...] = (80.0, 120.0, 160.0)

#: False-positive budget at which the detection rate is read.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric and attack class of the figure.
METRIC: str = "diff"
ATTACK_CLASS: str = "dec_bounded"


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return ScenarioSpec(
        name="fig8",
        description="Detection rate vs percentage of compromised nodes",
        metrics=(METRIC,),
        attacks=(ATTACK_CLASS,),
        degrees=tuple(degrees),
        fractions=tuple(fractions),
        false_positive_rate=false_positive_rate,
        config=config or SimulationConfig(),
    ).scaled(scale)


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Render Figure 8 from an already-built scenario spec."""
    del density_workers  # single-density figure
    session = resolve_session(session, spec=scenario, store=store)
    return run_rate_figure(
        scenario,
        figure_id="fig8",
        title="Detection rate vs percentage of compromised nodes",
        panel_title="DR-x-D",
        x_axis="fractions",
        x_label="The Percentage of Compromised Nodes",
        series_axis="degrees",
        series_label=lambda degree: f"D={degree:g}",
        x_transform=lambda fraction: fraction * 100.0,
        parameters={
            "false_positive_rate": scenario.false_positive_rate,
            "group_size": session.config.group_size,
            "metric": scenario.metrics[0],
            "attack": scenario.attacks[0],
        },
        session=session,
        workers=workers,
    )


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce Figure 8 and return its series."""
    return render(
        spec(
            config,
            scale,
            fractions=fractions,
            degrees=degrees,
            false_positive_rate=false_positive_rate,
        ),
        session=simulation,
        workers=workers,
        store=store,
    )
