"""Figure 5 — ROC curves for the two attack classes at small D (``DR-FP-T-D``).

Setup (paper Section 7.5): x = 10 %, m = 300, Diff metric; panels for
D ∈ {40, 80}; one curve per attack class (Dec-Bounded vs Dec-Only).

Expected qualitative outcome: the Dec-Bounded attack is markedly harder to
detect than the Dec-Only attack at these small degrees of damage — at
D = 40 the Dec-Only curve rises quickly while the Dec-Bounded curve stays
low until large false-positive rates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attacks.constraints import DecBoundedAttack, DecOnlyAttack
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import (
    DEFAULT_ROC_FP_GRID,
    resolve_simulation,
    roc_series,
)
from repro.experiments.harness import LadSimulation
from repro.experiments.results import FigureResult, PanelResult
from repro.experiments.sweep import SweepPoint, SweepRunner

__all__ = ["run", "DEGREES_OF_DAMAGE", "COMPROMISED_FRACTION", "METRIC"]

#: Degrees of damage of the two panels.
DEGREES_OF_DAMAGE: tuple[float, ...] = (40.0, 80.0)

#: Fraction of compromised neighbours.
COMPROMISED_FRACTION: float = 0.10

#: Detection metric used throughout the figure.
METRIC: str = "diff"

#: Attack classes compared by the figure.
ATTACK_CLASSES: tuple[str, ...] = (DecBoundedAttack.name, DecOnlyAttack.name)

_ATTACK_LABELS = {
    DecBoundedAttack.name: DecBoundedAttack.paper_name + "s",
    DecOnlyAttack.name: DecOnlyAttack.paper_name + "s",
}


def run(
    simulation: Optional[LadSimulation] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
    workers: int = 0,
) -> FigureResult:
    """Reproduce Figure 5 and return its series."""
    sim = resolve_simulation(simulation, config, scale)
    runner = sim.sweep(workers=workers)
    points = SweepRunner.grid(
        [METRIC], ATTACK_CLASSES, degrees, [COMPROMISED_FRACTION]
    )
    rocs = runner.rocs(points)

    figure = FigureResult(
        figure_id="fig5",
        title="ROC curves for different attacks (small degrees of damage)",
        parameters={
            "compromised_fraction": COMPROMISED_FRACTION,
            "group_size": sim.config.group_size,
            "metric": METRIC,
        },
    )
    for degree in degrees:
        panel = PanelResult(
            title=f"D={degree:g}",
            x_label="FP-False Positive Rate",
            y_label="DR-Detection Rate",
        )
        for attack in ATTACK_CLASSES:
            point = SweepPoint(METRIC, attack, float(degree), COMPROMISED_FRACTION)
            panel.add_series(roc_series(_ATTACK_LABELS[attack], rocs[point], fp_grid))
        figure.add_panel(panel)
    return figure
