"""Figure 5 — ROC curves for the two attack classes at small D (``DR-FP-T-D``).

Setup (paper Section 7.5): x = 10 %, m = 300, Diff metric; panels for
D ∈ {40, 80}; one curve per attack class (Dec-Bounded vs Dec-Only).

Expected qualitative outcome: the Dec-Bounded attack is markedly harder to
detect than the Dec-Only attack at these small degrees of damage — at
D = 40 the Dec-Only curve rises quickly while the Dec-Bounded curve stays
low until large false-positive rates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attacks.constraints import ATTACKS, DecBoundedAttack, DecOnlyAttack
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import (
    DEFAULT_ROC_FP_GRID,
    resolve_session,
    run_roc_figure,
)
from repro.experiments.results import FigureResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession

__all__ = [
    "run",
    "render",
    "spec",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTION",
    "METRIC",
]

#: Degrees of damage of the two panels.
DEGREES_OF_DAMAGE: tuple[float, ...] = (40.0, 80.0)

#: Fraction of compromised neighbours.
COMPROMISED_FRACTION: float = 0.10

#: Detection metric used throughout the figure.
METRIC: str = "diff"

#: Attack classes compared by the figure.
ATTACK_CLASSES: tuple[str, ...] = (DecBoundedAttack.name, DecOnlyAttack.name)


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    name: str = "fig5",
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return ScenarioSpec(
        name=name,
        description="ROC curves per attack class",
        metrics=(METRIC,),
        attacks=ATTACK_CLASSES,
        degrees=tuple(degrees),
        fractions=(COMPROMISED_FRACTION,),
        config=config or SimulationConfig(),
    ).scaled(scale)


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
) -> FigureResult:
    """Render Figure 5 from an already-built scenario spec."""
    del density_workers  # single-density figure
    session = resolve_session(session, spec=scenario, store=store)
    return run_roc_figure(
        scenario,
        figure_id="fig5",
        title="ROC curves for different attacks (small degrees of damage)",
        series_axis="attacks",
        series_label=lambda name: ATTACKS.create(name).paper_name + "s",
        parameters={
            "compromised_fraction": scenario.fractions[0],
            "group_size": session.config.group_size,
            "metric": scenario.metrics[0],
        },
        session=session,
        workers=workers,
        fp_grid=fp_grid,
    )


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fp_grid: Sequence[float] = DEFAULT_ROC_FP_GRID,
    workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce Figure 5 and return its series."""
    return render(
        spec(config, scale, degrees=degrees),
        session=simulation,
        workers=workers,
        store=store,
        fp_grid=fp_grid,
    )
