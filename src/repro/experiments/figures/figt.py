"""Figure T — Delivery and detection rate over time as an attack spreads.

The temporal companion of the paper's static detection-rate figures: a
live network evolves under a :class:`~repro.events.timeline.TimelineSpec`
(default: nodes jitter every epoch, the attack switches on mid-run and
keeps spreading periodically) while the trained detector re-scores every
victim's claim per epoch.  Each panel is one ``(D, x)`` sweep point with
three curves against epoch time — detection rate over the attacked
victims, false-positive rate over the benign ones, and the delivery rate
(live, unflagged claims) — and the panel parameters carry the online
metric family: detection latency, time to first false positive, and the
detection-rate drift.

Expected qualitative outcome: before the attack switches on the detection
rate is zero and delivery is near one; at the attack epoch the detection
rate jumps (the latency records how soon) while delivery collapses as
flagged claims are rejected; continued mobility slowly blurs deployment
knowledge, which shows up as drift.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.events.timeline import EventSpec, TimelineSpec
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_session
from repro.experiments.results import FigureResult, PanelResult, SeriesResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession

__all__ = [
    "run",
    "render",
    "spec",
    "DEFAULT_TIMELINE",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTIONS",
    "FALSE_POSITIVE_RATE",
    "METRIC",
    "ATTACK_CLASS",
]

#: The figure's default timeline: per-epoch jitter from epoch 1, the attack
#: switching on at epoch 4 and spreading over a third of the victims per
#: epoch thereafter.
DEFAULT_TIMELINE = TimelineSpec(
    epochs=12,
    epoch_duration=1.0,
    events=(
        EventSpec(
            kind="attack",
            action="on",
            period=1.0,
            start=4.0,
            fraction=0.34,
        ),
        EventSpec(
            kind="mobility",
            action="jitter",
            period=1.0,
            start=1.0,
            fraction=0.25,
            amplitude=5.0,
        ),
    ),
)

#: Degrees of damage (one panel each).
DEGREES_OF_DAMAGE: tuple[float, ...] = (120.0,)

#: Compromise fractions (one panel each).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.10,)

#: False-positive budget the thresholds are trained at.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric and attack class of the figure.
METRIC: str = "diff"
ATTACK_CLASS: str = "dec_bounded"


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    timeline: Optional[TimelineSpec] = None,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative (temporal) scenario."""
    return ScenarioSpec(
        name="figt",
        description=(
            "Delivery and detection rate over time as an attack spreads"
        ),
        metrics=(METRIC,),
        attacks=(ATTACK_CLASS,),
        degrees=tuple(degrees),
        fractions=tuple(fractions),
        false_positive_rate=false_positive_rate,
        timeline=timeline if timeline is not None else DEFAULT_TIMELINE,
        config=config or SimulationConfig(),
    ).scaled(scale)


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Render figure T from an already-built scenario spec.

    Every sweep point of the scenario runs through its ``[timeline]``
    (the figure default when the spec carries none) on the session's
    cached state; ``workers`` fans the points over worker processes with
    bit-identical results, and an attached store persists each point's
    epoch record under the timeline fingerprint.  ``density_workers`` is
    accepted for renderer-interface uniformity and ignored (the figure
    has no density axis).
    """
    del density_workers

    timeline = scenario.timeline or DEFAULT_TIMELINE
    session = resolve_session(session, spec=scenario, store=store)
    runner = session.temporal(timeline, workers=workers)
    outcomes = runner.outcomes(
        scenario.points(), false_positive_rate=scenario.false_positive_rate
    )

    figure = FigureResult(
        figure_id="figt",
        title="Delivery and detection rate over time as an attack spreads",
        parameters={
            "false_positive_rate": scenario.false_positive_rate,
            "metric": scenario.metrics[0],
            "attack": scenario.attacks[0],
            "epochs": timeline.epochs,
            "epoch_duration": timeline.epoch_duration,
            "timeline_events": [
                event.as_dict() for event in timeline.events
            ],
            # One summary entry per panel: the online metric family.
            "points": [
                {
                    "degree_of_damage": point.degree_of_damage,
                    "compromised_fraction": point.compromised_fraction,
                    "detection_latency": outcome.detection_latency,
                    "first_false_positive": outcome.first_false_positive,
                    "detection_drift": outcome.detection_drift,
                    "threshold": outcome.threshold,
                }
                for point, outcome in outcomes.items()
            ],
        },
    )

    for point, outcome in outcomes.items():
        panel = PanelResult(
            title=(
                f"D={point.degree_of_damage:g}m "
                f"x={int(round(point.compromised_fraction * 100))}%"
            ),
            x_label="time (epochs)",
            y_label="rate",
        )
        times = [float(t) for t in outcome.times]
        panel.add_series(
            SeriesResult(
                label="detection rate",
                x=times,
                y=[float(r) for r in outcome.detection_rates()],
            )
        )
        panel.add_series(
            SeriesResult(
                label="delivery rate",
                x=times,
                y=[float(r) for r in outcome.delivery_rates()],
            )
        )
        panel.add_series(
            SeriesResult(
                label="false positives",
                x=times,
                y=[float(r) for r in outcome.false_positive_rates()],
            )
        )
        figure.add_panel(panel)
    return figure


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    timeline: Optional[TimelineSpec] = None,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce figure T and return its series (see :func:`render`)."""
    return render(
        spec(
            config,
            scale,
            timeline=timeline,
            degrees=degrees,
            fractions=fractions,
            false_positive_rate=false_positive_rate,
        ),
        session=simulation,
        workers=workers,
        density_workers=density_workers,
        store=store,
    )
