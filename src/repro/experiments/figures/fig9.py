"""Figure 9 — Detection rate vs network density (``DR-m-x-D``).

Setup (paper Section 7.8): false-positive budget 1 %, Diff metric,
Dec-Bounded attacks; one panel per degree of damage D ∈ {80, 100, 160}; one
curve per compromise fraction x ∈ {10, 20, 30} %; the group size m sweeps
100 .. 1000 sensors per deployment group.

Each density value requires its own threshold training (the benign
localization error of the beaconless scheme shrinks as m grows, which is
exactly the effect the figure demonstrates), so this is the most expensive
figure; the default density sweep is therefore a small set of
representative points and can be widened via the ``group_sizes`` argument.
With an artifact store attached, each density's trained state persists, so
re-runs skip every training pass.

Expected qualitative outcome: the detection rate improves with density,
because denser networks localise more accurately and admit tighter benign
thresholds.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

from repro.core.evaluation import DetectionOutcome
from repro.experiments.config import SimulationConfig
from repro.experiments.figures.common import resolve_store_root
from repro.experiments.results import FigureResult, PanelResult, SeriesResult
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.session import LadSession
from repro.experiments.sweep import FAN_OUT_ERRORS, SweepPoint

__all__ = [
    "run",
    "render",
    "spec",
    "GROUP_SIZES",
    "DEGREES_OF_DAMAGE",
    "COMPROMISED_FRACTIONS",
    "FALSE_POSITIVE_RATE",
    "METRIC",
    "ATTACK_CLASS",
]

#: Swept network densities (sensors per deployment group).
GROUP_SIZES: tuple[int, ...] = (100, 300, 600, 1000)

#: Degrees of damage (one panel each).
DEGREES_OF_DAMAGE: tuple[float, ...] = (80.0, 100.0, 160.0)

#: Compromise fractions (one curve each).
COMPROMISED_FRACTIONS: tuple[float, ...] = (0.10, 0.20, 0.30)

#: False-positive budget at which the detection rate is read.
FALSE_POSITIVE_RATE: float = 0.01

#: Detection metric and attack class of the figure.
METRIC: str = "diff"
ATTACK_CLASS: str = "dec_bounded"


def spec(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    group_sizes: Sequence[int] = GROUP_SIZES,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
) -> ScenarioSpec:
    """The figure's evaluation as a declarative scenario."""
    return ScenarioSpec(
        name="fig9",
        description="Detection rate vs network density",
        metrics=(METRIC,),
        attacks=(ATTACK_CLASS,),
        degrees=tuple(degrees),
        fractions=tuple(fractions),
        group_sizes=tuple(group_sizes),
        false_positive_rate=false_positive_rate,
        config=config or SimulationConfig(),
    ).scaled(scale)


def _density_rates(
    args: Tuple[ScenarioSpec, int, Optional[str]],
) -> Tuple[int, Dict[SweepPoint, DetectionOutcome]]:
    """Detection rates of one density value (its own training pass).

    Module-level so the density fan-out can ship it to worker processes;
    every stream inside is derived from the config seed and parameter
    names, so the result is independent of where (and in which order) the
    densities run.  Workers re-open the artifact store by path (counters
    stay per-process, content is shared).
    """
    scenario, group_size, store_root = args
    session = scenario.session(group_size=group_size, store=store_root)
    rates = session.sweep(workers=0).detection_rates(
        scenario.points(), false_positive_rate=scenario.false_positive_rate
    )
    return int(group_size), rates


def render(
    scenario: ScenarioSpec,
    *,
    session: Optional[LadSession] = None,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Render Figure 9 from an already-built scenario spec.

    The *session* argument is ignored (each density needs its own
    session); it is accepted for interface uniformity with the other
    figure renderers.

    Parameters
    ----------
    workers:
        Worker processes for the per-density ``(D, x)`` sweep (only used
        when ``density_workers`` is off).
    density_workers:
        When ``> 1``, fan the *density axis* over this many worker
        processes instead: each density value needs its own deployment and
        threshold-training pass, which dwarfs the per-density sweep, so
        this is the axis worth parallelising.  Results are identical to the
        serial run (every random stream is derived from the config seed and
        the parameter names); platforms without process support fall back
        to the serial path with a warning.
    """
    del session

    figure = FigureResult(
        figure_id="fig9",
        title="Detection rate vs network density",
        parameters={
            "false_positive_rate": scenario.false_positive_rate,
            "metric": scenario.metrics[0],
            "attack": scenario.attacks[0],
        },
    )

    # One session (with its own training) per density value; the
    # per-density (D, x) grid runs through its sweep runner.  With
    # ``density_workers`` the densities themselves fan out across worker
    # processes (the training pass is the expensive part, and each density
    # needs its own).
    rates_at: Dict[int, Dict[SweepPoint, DetectionOutcome]] = {}
    store_root = resolve_store_root(store)
    tasks = [(scenario, m, store_root) for m in scenario.density_values()]
    if density_workers > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=min(density_workers, len(tasks))
            ) as pool:
                rates_at = dict(pool.map(_density_rates, tasks))
        except FAN_OUT_ERRORS as exc:
            warnings.warn(
                f"density fan-out unavailable on this platform ({exc!r}); "
                "running the densities serially",
                RuntimeWarning,
                stacklevel=2,
            )
            rates_at = {}
    if not rates_at:
        for m in scenario.density_values():
            session = scenario.session(group_size=m, store=store_root)
            rates_at[int(m)] = session.sweep(workers=workers).detection_rates(
                scenario.points(),
                false_positive_rate=scenario.false_positive_rate,
            )

    for degree in scenario.degrees:
        panel = PanelResult(
            title=f"D={degree:g}",
            x_label="m: Number of Nodes at Each Deployment Group",
            y_label="DR-Detection Rate",
        )
        for fraction in scenario.fractions:
            rates = [
                rates_at[int(m)][
                    SweepPoint(
                        scenario.metrics[0],
                        scenario.attacks[0],
                        float(degree),
                        float(fraction),
                    )
                ].detection_rate
                for m in scenario.density_values()
            ]
            panel.add_series(
                SeriesResult(
                    label=f"x={int(round(fraction * 100))}",
                    x=[float(m) for m in scenario.density_values()],
                    y=rates,
                )
            )
        figure.add_panel(panel)
    return figure


def run(
    simulation: Optional[LadSession] = None,
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    *,
    group_sizes: Sequence[int] = GROUP_SIZES,
    degrees: Sequence[float] = DEGREES_OF_DAMAGE,
    fractions: Sequence[float] = COMPROMISED_FRACTIONS,
    false_positive_rate: float = FALSE_POSITIVE_RATE,
    workers: int = 0,
    density_workers: int = 0,
    store=None,
) -> FigureResult:
    """Reproduce Figure 9 and return its series (see :func:`render`)."""
    return render(
        spec(
            config,
            scale,
            group_sizes=group_sizes,
            degrees=degrees,
            fractions=fractions,
            false_positive_rate=false_positive_rate,
        ),
        session=simulation,
        workers=workers,
        density_workers=density_workers,
        store=store,
    )
