"""Text rendering of figure results.

The benchmarks and the CLI print the reproduced series as aligned text
tables (one block per panel) so the qualitative shape of every figure can be
compared against the paper without any plotting dependency.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.results import FigureResult, PanelResult, SeriesResult

__all__ = ["format_series", "format_panel", "format_figure"]


def _format_value(value: float) -> str:
    if abs(value - round(value)) < 1e-9 and abs(value) >= 1.0:
        return f"{value:.0f}"
    return f"{value:.3f}"


def format_series(series: SeriesResult, *, indent: str = "  ") -> str:
    """Render one series as two aligned rows (x values, y values)."""
    xs = " ".join(f"{_format_value(v):>7}" for v in series.x)
    ys = " ".join(f"{_format_value(v):>7}" for v in series.y)
    return f"{indent}{series.label}\n{indent}  x: {xs}\n{indent}  y: {ys}"


def format_panel(panel: PanelResult) -> str:
    """Render a panel as a column-aligned table (one column per series)."""
    lines: List[str] = [f"-- {panel.title} --"]
    if not panel.series:
        lines.append("  (no series)")
        return "\n".join(lines)

    # When every series shares the same x grid, print a compact table with
    # one x column and one column per series; otherwise fall back to the
    # per-series rendering.
    x_grids = [tuple(np.round(s.x, 9)) for s in panel.series]
    if len(set(x_grids)) == 1:
        header = [panel.x_label] + [s.label for s in panel.series]
        widths = [max(10, len(h) + 2) for h in header]
        lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
        for i, x in enumerate(panel.series[0].x):
            row = [_format_value(x)] + [
                _format_value(s.y[i]) for s in panel.series
            ]
            lines.append("".join(v.rjust(w) for v, w in zip(row, widths)))
    else:
        lines.append(f"  ({panel.x_label} -> {panel.y_label})")
        for series in panel.series:
            lines.append(format_series(series))
    return "\n".join(lines)


def format_figure(figure: FigureResult) -> str:
    """Render a whole figure (all panels) as text."""
    lines = [f"== {figure.figure_id}: {figure.title} =="]
    if figure.parameters:
        params = ", ".join(f"{k}={v}" for k, v in sorted(figure.parameters.items()))
        lines.append(f"   parameters: {params}")
    for panel in figure.panels:
        lines.append("")
        lines.append(format_panel(panel))
    return "\n".join(lines)
