"""Parameter sweeps over the cached LAD evaluation state.

Every figure of the paper's evaluation section is a sweep of the same inner
computation — score the victims' tainted observations for one
``(metric, attack class, degree of damage D, compromise fraction x)``
combination — against state that is *shared* by all combinations: the
``g(z)`` table inside the deployment knowledge, the victims' honest
observations, and the benign training scores per metric.

:class:`SweepRunner` makes that structure explicit.  It fans a grid of
:class:`SweepPoint` combinations over worker processes (or runs them
serially for ``workers <= 1``) while materialising the shared state exactly
once:

* the expensive per-combination work — the greedy adversary plus metric
  scoring — is what gets distributed;
* the victim observation payload lives in one
  :mod:`multiprocessing.shared_memory` segment per array: workers receive
  only the segment name / shape / dtype through the pool initializer and
  map the buffers zero-copy, so no worker ever re-pickles the (potentially
  large) victim sample;
* the per-combination random streams are derived from the session seed
  and the combination *name* (:func:`attack_stream_name`), so a parallel
  sweep reproduces the serial one — and therefore
  :meth:`LadSession.attacked_scores` — bit for bit, regardless of
  scheduling order.

Platforms without working process pools or shared memory (some sandboxes
and embedded interpreters) degrade gracefully: the runner emits a
``RuntimeWarning`` and runs the identical serial path instead of crashing
mid-sweep.

The figure drivers (:mod:`repro.experiments.figures`) all route their
parameter grids through this runner.
"""

from __future__ import annotations

import hashlib
import itertools
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.evaluation import (
    DetectionOutcome,
    attacked_scores_from_observations,
    evaluate_detection,
)
from repro.core.metrics import AnomalyMetric, resolve_metric
from repro.core.roc import RocCurve, compute_roc
from repro.experiments.manifest import SweepManifest, SweepProgress
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - imported for type checkers only
    from repro.experiments.session import LadSession

__all__ = [
    "LocalizerModalities",
    "SweepPoint",
    "SweepRunner",
    "attack_stream_name",
    "shard_of_point",
    "shard_points",
]


def attack_stream_name(
    metric: Union[str, AnomalyMetric],
    attack_class: str,
    degree_of_damage: float,
    compromised_fraction: float,
) -> str:
    """Name of the random stream for one attack parameter combination.

    Shared by :meth:`LadSession.attacked_scores` and the sweep workers:
    because :meth:`~repro.utils.rng.RandomState.stream` derives its
    generator from ``(seed, name)`` alone, any evaluation path that uses the
    same name reproduces the same attack randomness.
    """
    return (
        f"attack/{resolve_metric(metric).name}/{attack_class}/"
        f"{degree_of_damage:g}/{compromised_fraction:g}"
    )


@dataclass(frozen=True)
class SweepPoint:
    """One combination of the evaluation parameter grid."""

    metric: str
    attack: str
    degree_of_damage: float
    compromised_fraction: float

    def stream_name(self) -> str:
        """Random-stream name of this combination."""
        return attack_stream_name(
            self.metric, self.attack, self.degree_of_damage, self.compromised_fraction
        )


def shard_of_point(point: SweepPoint, shard_count: int) -> int:
    """Deterministic shard index of *point* under *shard_count*-way sharding.

    Derived from the SHA-256 of the point's random-stream name — a pure
    function of the point's parameters, independent of grid order, Python's
    per-process hash randomisation, and the host computing it.  Every host
    of a fleet therefore agrees on the partition without coordination.
    """
    count = int(shard_count)
    if count < 1:
        raise ValueError("shard count must be >= 1")
    digest = hashlib.sha256(point.stream_name().encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % count


def _validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    """Normalise and validate an ``(index, count)`` shard selector."""
    index, count = int(shard[0]), int(shard[1])
    if count < 1:
        raise ValueError("shard count must be >= 1")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    return index, count


def shard_points(
    points: Iterable[SweepPoint], shard_index: int, shard_count: int
) -> List[SweepPoint]:
    """The slice of *points* owned by shard ``shard_index`` of ``shard_count``.

    The partition is stable (a point's shard depends only on its own
    parameters), so the slices of a given grid are pairwise disjoint and
    their union is exactly the full grid — regardless of grid ordering,
    re-runs, or which host evaluates the assignment.
    """
    index, count = _validate_shard((shard_index, shard_count))
    return [p for p in points if shard_of_point(p, count) == index]


#: Shared per-worker state, installed once by the pool initializer.
_WORKER_STATE: dict = {}

#: Errors that mean "this platform cannot fan out worker processes" — the
#: runner falls back to the (bit-identical) serial path when it sees one.
FAN_OUT_ERRORS = (ImportError, NotImplementedError, OSError, BrokenProcessPool)


def _share_array(array: np.ndarray):
    """Copy *array* into a fresh shared-memory segment.

    Returns the segment (the caller owns it and must ``close``/``unlink``)
    plus the picklable metadata a worker needs to map the buffer.
    """
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    meta = {"name": segment.name, "shape": array.shape, "dtype": str(array.dtype)}
    return segment, meta


def _attach_array(meta: dict):
    """Map a shared-memory segment created by :func:`_share_array`.

    The worker does not own the segment — the parent unlinks it — so the
    attach must not register it with the resource tracker (on POSIX,
    attaching registers just like creating; with a fork-shared tracker the
    duplicate registrations from many workers then produce spurious
    "leaked shared_memory" noise and double-unlink errors).  Registration
    is suppressed for the duration of the attach.
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        segment = shared_memory.SharedMemory(name=meta["name"])
    finally:
        resource_tracker.register = original_register
    array = np.ndarray(
        tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]), buffer=segment.buf
    )
    # Every worker maps the same buffer: an in-place mutation anywhere would
    # silently corrupt the other workers' inputs, so make it loud instead.
    array.flags.writeable = False
    return segment, array


def _init_worker(payload: dict) -> None:
    state = dict(payload)
    shared = state.pop("shared_arrays", None)
    if shared:
        segments = []
        for key, meta in shared.items():
            segment, array = _attach_array(meta)
            segments.append(segment)
            state[key] = array
        # Keep the segments referenced for the worker's lifetime: the numpy
        # views borrow their buffers.
        state["_shared_segments"] = segments
    skeleton = state.pop("knowledge_skeleton", None)
    if skeleton is not None:
        # Rebuild the deployment knowledge from its shared-memory arrays
        # plus the pickled skeleton: the lattice and the tabulated g(z)
        # knots are mapped zero-copy, so per-worker memory stays
        # O(victims), not O(knowledge).  Backends hold process-local state
        # and are rebuilt from their spec.
        from repro.deployment.knowledge import DeploymentKnowledge

        backend_spec = state.pop("backend_spec", None)
        backend = None if backend_spec is None else backend_spec.build()
        state["knowledge"] = DeploymentKnowledge.from_share_parts(
            skeleton,
            {
                "deployment_points": state.pop("knowledge_points"),
                "gz_knots": state.pop("knowledge_gz_knots"),
                "gz_values": state.pop("knowledge_gz_values"),
            },
            backend=backend,
        )
    _WORKER_STATE.update(state)


@dataclass(frozen=True)
class LocalizerModalities:
    """Picklable stand-in for a localization scheme in the worker payload.

    Modality-targeted attack classes only consult the scheme's
    ``modalities`` tag (to decide whether the attacked channel feeds the
    scheme at all), so the pool ships this two-field view instead of the
    scheme itself — schemes may hold process-local backend state that must
    not cross process boundaries.  Serial and parallel paths therefore see
    the same modality decision, keeping them bit-identical.
    """

    modalities: tuple = ()
    name: str = ""


def _score_point(point: SweepPoint) -> np.ndarray:
    """Attacked scores for one combination, from the worker's shared state."""
    state = _WORKER_STATE
    rng = RandomState(state["seed"]).stream(point.stream_name())
    return attacked_scores_from_observations(
        state["knowledge"],
        state["observations"],
        state["locations"],
        metric=point.metric,
        attack_class=point.attack,
        degree_of_damage=point.degree_of_damage,
        compromised_fraction=point.compromised_fraction,
        rng=rng,
        localizer=state.get("localizer_view"),
    )


class SweepRunner:
    """Fan a parameter grid over workers that share the cached state.

    Parameters
    ----------
    simulation:
        The :class:`~repro.experiments.session.LadSession` whose cached
        knowledge, victims and benign scores the sweep reuses.
    workers:
        Number of worker processes.  ``0`` or ``1`` (default) runs the sweep
        serially in-process; either way the results are identical.

    Examples
    --------
    >>> runner = LadSession(config).sweep(workers=4)
    >>> points = SweepRunner.grid(["diff"], ["dec_bounded"],
    ...                           degrees=[80, 160], fractions=[0.1, 0.3])
    >>> rates = runner.detection_rates(points)
    """

    def __init__(self, simulation: "LadSession", *, workers: int = 0):
        self._simulation = simulation
        self._workers = int(workers)

    @property
    def simulation(self) -> "LadSession":
        """The session whose cached state this runner shares."""
        return self._simulation

    @property
    def session(self) -> "LadSession":
        """Alias of :attr:`simulation` matching the session API naming."""
        return self._simulation

    @staticmethod
    def grid(
        metrics: Iterable[Union[str, AnomalyMetric]],
        attacks: Iterable[str],
        degrees: Iterable[float],
        fractions: Iterable[float],
    ) -> List[SweepPoint]:
        """The cartesian product of the given parameter axes."""
        return [
            SweepPoint(
                resolve_metric(metric).name, attack, float(degree), float(fraction)
            )
            for metric, attack, degree, fraction in itertools.product(
                metrics, attacks, degrees, fractions
            )
        ]

    def attacked_scores(
        self,
        points: Sequence[SweepPoint],
        *,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Dict[SweepPoint, np.ndarray]:
        """Attacked score samples for every sweep point.

        With ``workers > 1`` the grid is fanned over a process pool whose
        workers map the victim payload from shared memory; on platforms
        where that is impossible the sweep falls back to the serial path
        (identical results) with a :class:`RuntimeWarning`.
        """
        return dict(self.iter_attacked_scores(points, shard=shard))

    def progress(self, points: Sequence[SweepPoint]) -> SweepProgress:
        """Manifest-backed progress of the sweep over *points*.

        Loads the grid's manifest (merging any on-disk copy another shard
        published), reconciles it against the store — the ``.npz``
        artifacts stay the source of truth, so phantom "done" entries whose
        artifact vanished are healed back to pending — republishes the
        healed manifest, and returns the counts.  Never opens an ``.npz``
        and never touches the store's hit/miss counters.
        """
        points = list(points)
        session = self._simulation
        store = session.store
        if store is None:
            raise ValueError("sweep progress requires a session artifact store")
        keys = session.attacked_scores_keys(points)
        manifest = SweepManifest.for_points(points, keys)
        disk = SweepManifest.load(store, manifest.key)
        if disk is not None:
            manifest.absorb_done(disk)
        healed = manifest.reconcile(store, "attacked_scores")
        manifest.publish(store)
        return SweepProgress(
            total=manifest.total,
            done=manifest.done_count,
            healed=healed,
            key=manifest.key,
        )

    def iter_attacked_scores(
        self,
        points: Sequence[SweepPoint],
        *,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Iterator[Tuple[SweepPoint, np.ndarray]]:
        """Yield ``(point, attacked scores)`` pairs as they complete.

        Results arrive in grid order.  This is the streaming form of
        :meth:`attacked_scores`: the CLI ``sweep`` command prints each point
        the moment it is scored instead of waiting for the whole grid.

        When the session carries an artifact store, every point is first
        looked up under its attacked-score fingerprint: warm points stream
        straight from disk, only the cold remainder is computed (serially
        or via the shared-memory worker pool) and each cold result is
        published atomically the moment it arrives.  An interrupted sweep
        resumed with the same cache directory therefore recomputes exactly
        the missing points — and, because each point's random stream is
        derived from the seed and parameter names alone, reproduces an
        uninterrupted cold run bit for bit.

        With ``workers > 1`` the pool's result iterator is consumed lazily,
        so scoring and downstream reporting overlap; when fan-out is
        unavailable (or a pool dies mid-sweep) the remaining points continue
        on the bit-identical serial path after a :class:`RuntimeWarning`.

        *shard* restricts the iteration to one deterministic slice of the
        grid (``(index, count)``, see :func:`shard_points`) while the
        manifest written alongside still covers the *full* grid — several
        hosts pointing at the same store each compute their own slice and
        converge on one shared progress record.
        """
        points = list(points)
        session = self._simulation
        store = session.store
        selected = list(range(len(points)))
        if shard is not None:
            index, count = _validate_shard(shard)
            selected = [
                i for i, p in enumerate(points) if shard_of_point(p, count) == index
            ]
        # Partition warm/cold with existence probes only (the pre-scan
        # must not read N arrays up front: warm artifacts are loaded one
        # at a time at yield time, keeping the generator O(1) in memory
        # for arbitrarily long resumed sweeps).
        keys: List[Optional[str]] = [None] * len(points)
        warm_indices: set = set()
        manifest: Optional[SweepManifest] = None
        if store is not None:
            selected_set = set(selected)
            done_keys = []
            keys = session.attacked_scores_keys(points)
            for i in range(len(points)):
                if i in selected_set:
                    # Misses are only counted for points this run will have
                    # to compute and publish — our own slice.
                    if store.probe("attacked_scores", keys[i]):
                        warm_indices.add(i)
                        done_keys.append(keys[i])
                elif store.contains("attacked_scores", keys[i]):
                    done_keys.append(keys[i])
            # The scan above checked every point against the store, so the
            # fresh manifest *is* the reconciled truth at this instant —
            # merging the disk copy could only resurrect phantom "done"s.
            # Publishing it heals a stale manifest as a side effect.
            manifest = SweepManifest.for_points(points, keys, done=done_keys)
            manifest.publish(store)
        cold_scores = self._iter_cold_scores(
            [points[i] for i in selected if i not in warm_indices]
        )
        for i in selected:
            point = points[i]
            if i in warm_indices:
                cached = store.load("attacked_scores", keys[i])
                if cached is not None:
                    yield point, cached["scores"]
                    continue
                # Vanished or corrupt since the probe (quarantined by the
                # failed load): recompute this point inline.
                scores = session._compute_attacked_scores(
                    point.metric,
                    point.attack,
                    degree_of_damage=point.degree_of_damage,
                    compromised_fraction=point.compromised_fraction,
                )
            else:
                scores = next(cold_scores)
            if store is not None and keys[i] is not None:
                store.save("attacked_scores", keys[i], scores=scores)
                if manifest is not None:
                    manifest.record_done(store, keys[i])
            yield point, scores

    def _iter_cold_scores(
        self, points: List[SweepPoint]
    ) -> Iterator[np.ndarray]:
        """Compute scores for store-missing points, in grid order.

        The store was already consulted by :meth:`iter_attacked_scores`
        (which also publishes the results), so this path scores directly —
        via the pool when requested, with the usual serial fallback.
        """
        yielded = 0
        if self._workers > 1 and points:
            try:
                for _point, scores in self._iter_parallel(points):
                    yield scores
                    yielded += 1
            except FAN_OUT_ERRORS as exc:
                warnings.warn(
                    f"parallel sweep unavailable on this platform ({exc!r}); "
                    "falling back to the serial path",
                    RuntimeWarning,
                    stacklevel=2,
                )
        for point in points[yielded:]:
            yield self._simulation._compute_attacked_scores(
                point.metric,
                point.attack,
                degree_of_damage=point.degree_of_damage,
                compromised_fraction=point.compromised_fraction,
            )

    def _pool_payload(self):
        """Shared segments plus the metadata-only pool initializer payload.

        Everything with a real footprint — the victims' observation arrays
        and the deployment knowledge's lattice and tabulated ``g(z)`` —
        travels through shared memory; the pickled payload carries only
        segment metadata and a small knowledge skeleton
        (:meth:`~repro.deployment.knowledge.DeploymentKnowledge.share_parts`),
        so per-worker memory is O(victims' views), not O(knowledge) per
        process.  The caller owns the returned segments and must
        close/unlink them once the pool is done.
        """
        session = self._simulation
        sample = session.victims()
        knowledge_arrays, knowledge_skeleton = session.knowledge.share_parts()
        segments = []
        shared_arrays = {}
        try:
            for key, array in (
                ("observations", sample.observations),
                ("locations", sample.actual_locations),
                ("knowledge_points", knowledge_arrays["deployment_points"]),
                ("knowledge_gz_knots", knowledge_arrays["gz_knots"]),
                ("knowledge_gz_values", knowledge_arrays["gz_values"]),
            ):
                segment, meta = _share_array(array)
                segments.append(segment)
                shared_arrays[key] = meta
        except BaseException:
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            raise
        payload = {
            "seed": session.config.seed,
            "knowledge_skeleton": knowledge_skeleton,
            "backend_spec": session.backend_spec,
            "shared_arrays": shared_arrays,
            "localizer_view": LocalizerModalities(
                modalities=tuple(session.localizer.modalities),
                name=session.localizer.name,
            ),
        }
        return segments, payload

    def _iter_parallel(
        self, points: List[SweepPoint]
    ) -> Iterator[Tuple[SweepPoint, np.ndarray]]:
        """Fan the grid over a pool; the shared state travels via shared memory."""
        segments, payload = self._pool_payload()
        try:
            with ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_init_worker,
                initargs=(payload,),
            ) as pool:
                yield from zip(points, pool.map(_score_point, points))
        finally:
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def rocs(
        self,
        points: Sequence[SweepPoint],
        *,
        num_thresholds: Optional[int] = None,
    ) -> Dict[SweepPoint, RocCurve]:
        """ROC curves for every sweep point (Figures 4–6)."""
        attacked = self.attacked_scores(points)
        return {
            point: compute_roc(
                self._simulation.benign_scores(point.metric),
                scores,
                num_thresholds=num_thresholds,
            )
            for point, scores in attacked.items()
        }

    def detection_rates(
        self,
        points: Sequence[SweepPoint],
        *,
        false_positive_rate: float = 0.01,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Dict[SweepPoint, DetectionOutcome]:
        """A :class:`DetectionOutcome` per point at a FP budget (Figures 7–9).

        Each outcome carries the detection rate, the trained threshold and
        the score samples; per-victim :class:`~repro.core.verdict.Verdict`
        objects are one :meth:`DetectionOutcome.verdicts` call away.
        """
        return dict(
            self.iter_detection_rates(
                points, false_positive_rate=false_positive_rate, shard=shard
            )
        )

    def iter_detection_rates(
        self,
        points: Sequence[SweepPoint],
        *,
        false_positive_rate: float = 0.01,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Iterator[Tuple[SweepPoint, DetectionOutcome]]:
        """Stream ``(point, DetectionOutcome)`` pairs in grid order.

        The streaming form of :meth:`detection_rates` used by the CLI
        ``sweep`` subcommand; thresholds are trained (or served from the
        session's artifact store) before the first point is scored.
        *shard* restricts the stream to one slice of the grid (see
        :meth:`iter_attacked_scores`).
        """
        for point, scores in self.iter_attacked_scores(points, shard=shard):
            yield (
                point,
                evaluate_detection(
                    self._simulation.benign_scores(point.metric),
                    scores,
                    false_positive_rate=false_positive_rate,
                    metric=point.metric,
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepRunner(workers={self._workers}, simulation={self._simulation!r})"
