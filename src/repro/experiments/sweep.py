"""Parameter sweeps over the cached LAD evaluation state.

Every figure of the paper's evaluation section is a sweep of the same inner
computation — score the victims' tainted observations for one
``(metric, attack class, degree of damage D, compromise fraction x)``
combination — against state that is *shared* by all combinations: the
``g(z)`` table inside the deployment knowledge, the victims' honest
observations, and the benign training scores per metric.

:class:`SweepRunner` makes that structure explicit.  It fans a grid of
:class:`SweepPoint` combinations over worker processes (or runs them
serially for ``workers <= 1``) while materialising the shared state exactly
once:

* the expensive per-combination work — the greedy adversary plus metric
  scoring — is what gets distributed;
* each worker receives the shared payload once (via the pool initializer),
  not once per task;
* the per-combination random streams are derived from the simulation seed
  and the combination *name* (:func:`attack_stream_name`), so a parallel
  sweep reproduces the serial one — and therefore
  :meth:`LadSimulation.attacked_scores` — bit for bit, regardless of
  scheduling order.

The figure drivers (:mod:`repro.experiments.figures`) all route their
parameter grids through this runner.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.evaluation import (
    attacked_scores_from_observations,
    detection_rate_at_false_positive,
)
from repro.core.metrics import AnomalyMetric, get_metric
from repro.core.roc import RocCurve, compute_roc
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - imported for type checkers only
    from repro.experiments.harness import LadSimulation

__all__ = ["SweepPoint", "SweepRunner", "attack_stream_name"]


def attack_stream_name(
    metric: Union[str, AnomalyMetric],
    attack_class: str,
    degree_of_damage: float,
    compromised_fraction: float,
) -> str:
    """Name of the random stream for one attack parameter combination.

    Shared by :meth:`LadSimulation.attacked_scores` and the sweep workers:
    because :meth:`~repro.utils.rng.RandomState.stream` derives its
    generator from ``(seed, name)`` alone, any evaluation path that uses the
    same name reproduces the same attack randomness.
    """
    return (
        f"attack/{get_metric(metric).name}/{attack_class}/"
        f"{degree_of_damage:g}/{compromised_fraction:g}"
    )


@dataclass(frozen=True)
class SweepPoint:
    """One combination of the evaluation parameter grid."""

    metric: str
    attack: str
    degree_of_damage: float
    compromised_fraction: float

    def stream_name(self) -> str:
        """Random-stream name of this combination."""
        return attack_stream_name(
            self.metric, self.attack, self.degree_of_damage, self.compromised_fraction
        )


#: Shared per-worker state, installed once by the pool initializer.
_WORKER_STATE: dict = {}


def _init_worker(payload: dict) -> None:
    _WORKER_STATE.update(payload)


def _score_point(point: SweepPoint) -> np.ndarray:
    """Attacked scores for one combination, from the worker's shared state."""
    state = _WORKER_STATE
    rng = RandomState(state["seed"]).stream(point.stream_name())
    return attacked_scores_from_observations(
        state["knowledge"],
        state["observations"],
        state["locations"],
        metric=point.metric,
        attack_class=point.attack,
        degree_of_damage=point.degree_of_damage,
        compromised_fraction=point.compromised_fraction,
        rng=rng,
    )


class SweepRunner:
    """Fan a parameter grid over workers that share the cached state.

    Parameters
    ----------
    simulation:
        The :class:`~repro.experiments.harness.LadSimulation` whose cached
        knowledge, victims and benign scores the sweep reuses.
    workers:
        Number of worker processes.  ``0`` or ``1`` (default) runs the sweep
        serially in-process; either way the results are identical.

    Examples
    --------
    >>> runner = LadSimulation(config).sweep(workers=4)
    >>> points = SweepRunner.grid(["diff"], ["dec_bounded"],
    ...                           degrees=[80, 160], fractions=[0.1, 0.3])
    >>> rates = runner.detection_rates(points)
    """

    def __init__(self, simulation: "LadSimulation", *, workers: int = 0):
        self._simulation = simulation
        self._workers = int(workers)

    @property
    def simulation(self) -> "LadSimulation":
        """The simulation whose cached state this runner shares."""
        return self._simulation

    @staticmethod
    def grid(
        metrics: Iterable[Union[str, AnomalyMetric]],
        attacks: Iterable[str],
        degrees: Iterable[float],
        fractions: Iterable[float],
    ) -> List[SweepPoint]:
        """The cartesian product of the given parameter axes."""
        return [
            SweepPoint(get_metric(metric).name, attack, float(degree), float(fraction))
            for metric, attack, degree, fraction in itertools.product(
                metrics, attacks, degrees, fractions
            )
        ]

    def attacked_scores(
        self, points: Sequence[SweepPoint]
    ) -> Dict[SweepPoint, np.ndarray]:
        """Attacked score samples for every sweep point."""
        points = list(points)
        if self._workers <= 1:
            return {
                point: self._simulation.attacked_scores(
                    point.metric,
                    point.attack,
                    degree_of_damage=point.degree_of_damage,
                    compromised_fraction=point.compromised_fraction,
                )
                for point in points
            }
        sample = self._simulation.victims()
        payload = {
            "knowledge": self._simulation.knowledge,
            "observations": sample.observations,
            "locations": sample.actual_locations,
            "seed": self._simulation.config.seed,
        }
        with ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            scored = list(pool.map(_score_point, points))
        return dict(zip(points, scored))

    def rocs(
        self,
        points: Sequence[SweepPoint],
        *,
        num_thresholds: Optional[int] = None,
    ) -> Dict[SweepPoint, RocCurve]:
        """ROC curves for every sweep point (Figures 4–6)."""
        attacked = self.attacked_scores(points)
        return {
            point: compute_roc(
                self._simulation.benign_scores(point.metric),
                scores,
                num_thresholds=num_thresholds,
            )
            for point, scores in attacked.items()
        }

    def detection_rates(
        self,
        points: Sequence[SweepPoint],
        *,
        false_positive_rate: float = 0.01,
    ) -> Dict[SweepPoint, Tuple[float, float]]:
        """``(detection rate, threshold)`` per point at a FP budget (Figures 7–9)."""
        attacked = self.attacked_scores(points)
        return {
            point: detection_rate_at_false_positive(
                self._simulation.benign_scores(point.metric),
                scores,
                false_positive_rate,
            )
            for point, scores in attacked.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepRunner(workers={self._workers}, simulation={self._simulation!r})"
