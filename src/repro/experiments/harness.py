"""The LAD evaluation harness.

:class:`LadSimulation` wires together the whole pipeline of the paper's
evaluation (Section 7):

* deploy sensor networks from the configured deployment model;
* collect benign training data and derive metric thresholds (Section 5.5);
* sample victim nodes, simulate D-anomaly attacks plus the greedy
  observation-tainting adversary (Sections 6, 7.1);
* report ROC curves and detection rates at a fixed false-positive budget.

The pipeline is batched end to end.  Victim observations are collected by
the one-pass :meth:`NeighborIndex.observations_of_nodes` kernel and benign
training locations come from the vectorised
:meth:`BeaconlessLocalizer.localize_observations` engine, so neither pays a
Python-level loop per sample.  Everything expensive is cached per
simulation instance: the ``g(z)`` table, the evaluation networks, the
victims' honest observations, the benign training scores per metric.

Parameter sweeps (over ``D``, ``x``, metric or attack class) therefore pay
the deployment and neighbour-discovery cost only once.  :meth:`LadSimulation.sweep`
hands the cached state to a :class:`~repro.experiments.sweep.SweepRunner`,
which fans the per-combination scoring across worker processes while every
combination keeps its name-derived random stream — a parallel sweep
reproduces the serial one exactly.  The figure drivers (Figures 4–9) are
all built on that runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.evaluation import (
    attacked_scores_from_observations,
    detection_rate_at_false_positive,
    evaluate_detection,
)
from repro.core.metrics import AnomalyMetric, get_metric
from repro.core.roc import RocCurve, compute_roc
from repro.core.training import TrainingData, benign_scores, collect_training_data
from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.knowledge import DeploymentKnowledge
from repro.deployment.models import GridDeploymentModel
from repro.experiments.config import SimulationConfig
from repro.localization.beaconless import BeaconlessLocalizer
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio
from repro.types import Region
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - imported for type checkers only
    from repro.experiments.sweep import SweepRunner

__all__ = ["LadSimulation"]

_LOGGER = get_logger("experiments.harness")


@dataclass
class _VictimSample:
    """Cached honest observations of the evaluation victims."""

    observations: np.ndarray
    actual_locations: np.ndarray


class LadSimulation:
    """End-to-end LAD evaluation for one :class:`SimulationConfig`.

    Parameters
    ----------
    config:
        The simulation configuration (paper defaults when omitted).

    Examples
    --------
    >>> sim = LadSimulation(SimulationConfig(num_training_samples=50,
    ...                                      num_victims=50))
    >>> dr, thr = sim.detection_rate("diff", "dec_bounded",
    ...                              degree_of_damage=160,
    ...                              compromised_fraction=0.1,
    ...                              false_positive_rate=0.01)
    """

    def __init__(self, config: Optional[SimulationConfig] = None):
        self.config = config or SimulationConfig()
        self._random = RandomState(self.config.seed)

        region = Region(0.0, 0.0, self.config.region_size, self.config.region_size)
        self._model = GridDeploymentModel(
            region=region,
            rows=self.config.grid_rows,
            cols=self.config.grid_cols,
            distribution=GaussianResidentDistribution(self.config.sigma),
        )
        self._generator = NetworkGenerator(
            model=self._model,
            group_size=self.config.group_size,
            radio=UnitDiskRadio(self.config.radio_range),
        )
        self._localizer = BeaconlessLocalizer(
            resolution=self.config.localization_resolution
        )

        # Lazy caches.
        self._knowledge: Optional[DeploymentKnowledge] = None
        self._training: Optional[TrainingData] = None
        self._benign_scores: Dict[str, np.ndarray] = {}
        self._victims: Optional[_VictimSample] = None

    # -- cached building blocks ------------------------------------------------

    @property
    def generator(self) -> NetworkGenerator:
        """The network generator used by this simulation."""
        return self._generator

    @property
    def knowledge(self) -> DeploymentKnowledge:
        """The (cached) deployment knowledge, including the ``g(z)`` table."""
        if self._knowledge is None:
            self._knowledge = self._generator.knowledge(omega=self.config.gz_omega)
        return self._knowledge

    @property
    def training_data(self) -> TrainingData:
        """Benign training samples (cached; Section 5.5 step 1)."""
        if self._training is None:
            _LOGGER.info(
                "collecting %d benign training samples (m=%d)",
                self.config.num_training_samples,
                self.config.group_size,
            )
            self._training = collect_training_data(
                self._generator,
                num_samples=self.config.num_training_samples,
                samples_per_network=self.config.training_samples_per_network,
                localizer=self._localizer,
                rng=self._random.stream("training"),
            )
        return self._training

    def benign_scores(self, metric: Union[str, AnomalyMetric]) -> np.ndarray:
        """Benign metric scores used for threshold training (cached per metric)."""
        metric = get_metric(metric)
        if metric.name not in self._benign_scores:
            self._benign_scores[metric.name] = benign_scores(
                self.training_data, self.knowledge, metric
            )
        return self._benign_scores[metric.name]

    def victims(self) -> _VictimSample:
        """Honest observations and locations of the evaluation victims (cached)."""
        if self._victims is None:
            rng = self._random.stream("victims")
            observations: List[np.ndarray] = []
            locations: List[np.ndarray] = []
            remaining = self.config.num_victims
            while remaining > 0:
                network = self._generator.generate(rng)
                index = NeighborIndex(network)
                take = min(self.config.victims_per_network, remaining)
                nodes = rng.choice(network.num_nodes, size=take, replace=False)
                observations.append(index.observations_of_nodes(nodes))
                locations.append(network.positions[nodes])
                remaining -= take
            self._victims = _VictimSample(
                observations=np.vstack(observations),
                actual_locations=np.vstack(locations),
            )
        return self._victims

    # -- evaluation entry points -------------------------------------------------

    def attacked_scores(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
    ) -> np.ndarray:
        """Attacked anomaly scores for one parameter combination."""
        from repro.experiments.sweep import attack_stream_name

        sample = self.victims()
        rng = self._random.stream(
            attack_stream_name(
                metric, attack_class, degree_of_damage, compromised_fraction
            )
        )
        return attacked_scores_from_observations(
            self.knowledge,
            sample.observations,
            sample.actual_locations,
            metric=metric,
            attack_class=attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
            rng=rng,
        )

    def roc(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        num_thresholds: Optional[int] = None,
    ) -> RocCurve:
        """ROC curve for one parameter combination (Figures 4–6)."""
        benign = self.benign_scores(metric)
        attacked = self.attacked_scores(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
        )
        return compute_roc(benign, attacked, num_thresholds=num_thresholds)

    def detection_rate(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        false_positive_rate: float = 0.01,
    ) -> Tuple[float, float]:
        """``(detection rate, threshold)`` at a false-positive budget (Figures 7–9)."""
        benign = self.benign_scores(metric)
        attacked = self.attacked_scores(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
        )
        return detection_rate_at_false_positive(benign, attacked, false_positive_rate)

    def outcome(
        self,
        metric: Union[str, AnomalyMetric],
        attack_class: str,
        *,
        degree_of_damage: float,
        compromised_fraction: float,
        false_positive_rate: float = 0.01,
    ):
        """Full :class:`~repro.core.evaluation.DetectionOutcome` for one combination."""
        benign = self.benign_scores(metric)
        attacked = self.attacked_scores(
            metric,
            attack_class,
            degree_of_damage=degree_of_damage,
            compromised_fraction=compromised_fraction,
        )
        return evaluate_detection(
            benign, attacked, false_positive_rate=false_positive_rate
        )

    def sweep(self, *, workers: int = 0) -> "SweepRunner":
        """A :class:`~repro.experiments.sweep.SweepRunner` over this simulation.

        Parameters
        ----------
        workers:
            Worker processes for the per-combination scoring; ``0``/``1``
            runs serially with identical results.
        """
        from repro.experiments.sweep import SweepRunner

        return SweepRunner(self, workers=workers)

    def benign_localization_error(self) -> float:
        """Mean benign localization error of the training samples (metres)."""
        return float(self.training_data.localization_errors().mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LadSimulation(m={self.config.group_size}, "
            f"R={self.config.radio_range:g})"
        )
