"""Deprecated legacy harness module.

The end-to-end evaluation pipeline now lives in
:class:`repro.experiments.session.LadSession` (cached state) plus the
declarative :class:`repro.experiments.scenario.ScenarioSpec` (parameter
grids).  ``LadSimulation`` remains as a thin deprecation shim for one
release: it *is* a :class:`LadSession` — same caches, same random streams,
bit-identical results — that additionally emits a
:class:`DeprecationWarning` at construction time.
"""

from __future__ import annotations

import warnings

from repro.experiments.session import LadSession

__all__ = ["LadSimulation"]


class LadSimulation(LadSession):
    """Deprecated alias of :class:`~repro.experiments.session.LadSession`.

    .. deprecated::
        Use :class:`repro.LadSession` (optionally driven by a
        :class:`repro.ScenarioSpec`) instead; this shim will be removed
        after one release.  Results are bit-identical to ``LadSession``.
    """

    def __init__(self, config=None, **kwargs):
        warnings.warn(
            "LadSimulation is deprecated; use repro.LadSession (optionally "
            "driven by a repro.ScenarioSpec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(config, **kwargs)
