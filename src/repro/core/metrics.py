"""The three LAD anomaly metrics (paper Sections 5.2–5.4).

All metrics follow the convention **larger score = more anomalous**, so a
single thresholding rule ("alarm when score > threshold") applies uniformly:

* :class:`DiffMetric` — ``DM = Σ_i |o_i − µ_i|`` (Section 5.2);
* :class:`AddAllMetric` — ``AM = Σ_i max(o_i, µ_i)`` (Section 5.3);
* :class:`ProbabilityMetric` — the paper raises an alarm when the *smallest*
  per-group binomial probability ``Pr(X_i = o_i | L_e)`` falls below a
  threshold (Section 5.4); to keep the "larger = worse" convention the score
  is the negative log of that smallest probability, which is a monotone
  transform and therefore yields identical detection decisions and ROC
  curves.

Every metric exposes a vectorised ``compute`` over batches of
``(observation, expected)`` rows plus a convenience ``score`` that takes a
:class:`~repro.deployment.knowledge.DeploymentKnowledge` and locations.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Union

import numpy as np

from repro.deployment.knowledge import DeploymentKnowledge
from repro.registry import Registry
from repro.utils.stats import binomial_log_pmf

__all__ = [
    "AnomalyMetric",
    "DiffMetric",
    "AddAllMetric",
    "ProbabilityMetric",
    "METRICS",
    "resolve_metric",
    "ALL_METRICS",
]

#: Registry of anomaly metrics; third-party metrics plug in with
#: ``@METRICS.register(...)`` (also exposed as :func:`repro.metrics.register`).
METRICS = Registry("metric")


def _as_batches(
    observations: np.ndarray,
    expected: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Normalise observation/expected inputs to matching 2-D batches."""
    obs = np.asarray(observations, dtype=np.float64)
    exp = np.asarray(expected, dtype=np.float64)
    single = obs.ndim == 1
    if obs.ndim == 1:
        obs = obs[None, :]
    if exp.ndim == 1:
        exp = exp[None, :]
    if exp.shape[0] == 1 and obs.shape[0] > 1:
        exp = np.broadcast_to(exp, obs.shape)
    if obs.shape != exp.shape:
        raise ValueError(
            f"observations {obs.shape} and expected {exp.shape} are incompatible"
        )
    return obs, exp, single


class AnomalyMetric(abc.ABC):
    """Base class of the LAD inconsistency metrics."""

    #: Canonical short name used in configs, reports and the CLI.
    name: str = "abstract"

    #: Name used in the paper's figures.
    paper_name: str = "abstract"

    @abc.abstractmethod
    def compute(
        self,
        observations: np.ndarray,
        expected: np.ndarray,
        group_size: Optional[int] = None,
    ) -> Union[float, np.ndarray]:
        """Anomaly scores for ``(observation, expected)`` batches.

        Parameters
        ----------
        observations:
            Observation vectors, shape ``(n_groups,)`` or ``(k, n_groups)``.
        expected:
            Matching expected observations ``µ``.
        group_size:
            Sensors per group ``m``; only the Probability metric needs it.

        Returns
        -------
        A scalar for single inputs, otherwise an array of shape ``(k,)``.
        """

    def score(
        self,
        knowledge: DeploymentKnowledge,
        locations,
        observations: np.ndarray,
    ) -> Union[float, np.ndarray]:
        """Score *observations* against the expectations at *locations*."""
        expected = knowledge.expected_observation(locations)
        return self.compute(observations, expected, group_size=knowledge.group_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@METRICS.register("difference", "dm")
class DiffMetric(AnomalyMetric):
    """The Difference metric ``DM = Σ_i |o_i − µ_i|`` (Section 5.2)."""

    name = "diff"
    paper_name = "Diff Metric"

    def compute(self, observations, expected, group_size=None):
        obs, exp, single = _as_batches(observations, expected)
        scores = np.abs(obs - exp).sum(axis=1)
        return float(scores[0]) if single else scores


@METRICS.register("addall", "am")
class AddAllMetric(AnomalyMetric):
    """The Add-all metric ``AM = Σ_i max(o_i, µ_i)`` (Section 5.3).

    Intuition: the union of the observation expected at the claimed location
    and the observation actually made contains many neighbours when the two
    locations are far apart (the union covers both neighbourhoods), and only
    slightly more than either alone when they are close.
    """

    name = "add_all"
    paper_name = "Add All Metric"

    def compute(self, observations, expected, group_size=None):
        obs, exp, single = _as_batches(observations, expected)
        scores = np.maximum(obs, exp).sum(axis=1)
        return float(scores[0]) if single else scores


@METRICS.register("prob", "pm")
class ProbabilityMetric(AnomalyMetric):
    """The Probability metric (Section 5.4).

    For each group the probability of seeing exactly ``o_i`` neighbours out
    of ``m`` is ``Binomial(o_i; m, g_i(L_e))``.  The paper alarms when the
    *minimum* of these probabilities falls below a (small) threshold; the
    score reported here is ``−log(min_i Pr(X_i = o_i | L_e))`` so that larger
    scores mean "more anomalous" like the other metrics.  Because the
    transform is strictly monotone, thresholding the score at ``−log(p)`` is
    exactly equivalent to thresholding the probability at ``p``, and the ROC
    curves are unchanged.
    """

    name = "probability"
    paper_name = "Probability Metric"

    #: Scores are clipped to this value when the minimum probability is zero
    #: (e.g. observing a neighbour from a group whose membership probability
    #: rounds to zero at the claimed location).
    max_score: float = 745.0  # -log of the smallest positive double

    def compute(self, observations, expected, group_size=None):
        if group_size is None:
            raise ValueError("the Probability metric requires group_size (m)")
        obs, exp, single = _as_batches(observations, expected)
        m = float(group_size)
        probs = np.clip(exp / m, 0.0, 1.0)
        log_pmf = binomial_log_pmf(obs, m, probs)
        min_log = log_pmf.min(axis=1)
        scores = np.minimum(-min_log, self.max_score)
        return float(scores[0]) if single else scores

    def min_probability(
        self, observations, expected, group_size: int
    ) -> Union[float, np.ndarray]:
        """The raw paper-form statistic ``min_i Pr(X_i = o_i | L_e)``."""
        scores = self.compute(observations, expected, group_size=group_size)
        return np.exp(-np.asarray(scores)) if not np.isscalar(scores) else float(
            np.exp(-scores)
        )


#: All metrics studied in the paper, in the order of Figure 4.
ALL_METRICS: List[AnomalyMetric] = [DiffMetric(), AddAllMetric(), ProbabilityMetric()]


def resolve_metric(metric: Union[str, AnomalyMetric]) -> AnomalyMetric:
    """Resolve a metric name through :data:`METRICS` (instances pass through)."""
    return METRICS.resolve(metric)
