"""Detection-threshold derivation (paper Section 5.5).

Thresholds are obtained by training: the metric is evaluated on benign
simulated deployments, and the threshold is the ``τ``-percentile of the
resulting score distribution, so that a fraction ``1 − τ`` of benign samples
would (nominally) raise a false alarm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Union

import numpy as np

from repro.core.metrics import AnomalyMetric, resolve_metric
from repro.utils.stats import empirical_percentile
from repro.utils.validation import check_probability

__all__ = ["derive_threshold", "ThresholdTable"]


def derive_threshold(benign_scores: np.ndarray, tau: float = 0.99) -> float:
    """The ``τ``-percentile detection threshold of a benign score sample.

    Parameters
    ----------
    benign_scores:
        Metric values computed on benign training data (no attacks).
    tau:
        Fraction of benign samples that must stay below the threshold;
        ``1 − tau`` is the nominal false-positive rate.
    """
    check_probability("tau", tau)
    return empirical_percentile(np.asarray(benign_scores, dtype=np.float64), tau)


@dataclass
class ThresholdTable:
    """Trained thresholds for several metrics at several ``τ`` levels.

    The table stores the raw benign scores per metric, so thresholds for new
    ``τ`` values (equivalently, new nominal false-positive rates) can be read
    off without re-running the training simulation.
    """

    benign_scores: Dict[str, np.ndarray] = field(default_factory=dict)

    def add_metric(self, metric: Union[str, AnomalyMetric], scores: np.ndarray) -> None:
        """Record the benign training scores of one metric."""
        metric = resolve_metric(metric)
        scores = np.asarray(scores, dtype=np.float64)
        if scores.size == 0:
            raise ValueError("cannot train a threshold on an empty score sample")
        self.benign_scores[metric.name] = scores

    def metrics(self) -> Iterable[str]:
        """Names of the metrics with recorded training scores."""
        return self.benign_scores.keys()

    def threshold(self, metric: Union[str, AnomalyMetric], tau: float = 0.99) -> float:
        """Threshold of *metric* at training percentile *tau*."""
        metric = resolve_metric(metric)
        if metric.name not in self.benign_scores:
            raise KeyError(f"no training scores recorded for metric {metric.name!r}")
        return derive_threshold(self.benign_scores[metric.name], tau)

    def threshold_for_false_positive(
        self, metric: Union[str, AnomalyMetric], false_positive_rate: float
    ) -> float:
        """Threshold whose nominal false-positive rate is *false_positive_rate*."""
        check_probability("false_positive_rate", false_positive_rate)
        return self.threshold(metric, tau=1.0 - false_positive_rate)

    def as_dict(self, tau: float = 0.99) -> Mapping[str, float]:
        """Thresholds of every recorded metric at percentile *tau*."""
        return {
            name: derive_threshold(scores, tau)
            for name, scores in self.benign_scores.items()
        }
