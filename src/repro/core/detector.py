"""The LAD detector: metric + trained threshold → anomaly alarms.

A :class:`LADDetector` is what a deployed sensor would run after the
localization phase: it holds the deployment knowledge, one anomaly metric
and the threshold trained for that metric, and turns an
``(estimated location, observation)`` pair into an alarm decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.metrics import AnomalyMetric, resolve_metric
from repro.core.thresholds import ThresholdTable, derive_threshold
from repro.core.training import TrainingData, benign_scores
from repro.deployment.knowledge import DeploymentKnowledge
from repro.utils.validation import check_probability

__all__ = ["DetectionReport", "LADDetector"]


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of running the detector on one node.

    Attributes
    ----------
    score:
        The metric value (larger = more anomalous).
    threshold:
        The detection threshold in force.
    anomalous:
        ``True`` when the score exceeds the threshold, i.e. the estimated
        location is inconsistent with the node's observation.
    metric:
        Name of the metric that produced the score.
    """

    score: float
    threshold: float
    anomalous: bool
    metric: str


class LADDetector:
    """Localization-anomaly detector for a single deployment configuration.

    Parameters
    ----------
    knowledge:
        The deployment knowledge shared by all sensors.
    metric:
        Anomaly metric (name or instance); the paper's best performer is the
        Diff metric, which is the default.
    threshold:
        Detection threshold.  Usually obtained via :meth:`train` or
        :meth:`from_training_data`; can be set manually for ROC sweeps.
    """

    def __init__(
        self,
        knowledge: DeploymentKnowledge,
        metric: Union[str, AnomalyMetric] = "diff",
        threshold: Optional[float] = None,
    ):
        self._knowledge = knowledge
        self._metric = resolve_metric(metric)
        self._threshold = None if threshold is None else float(threshold)

    # -- properties ----------------------------------------------------------

    @property
    def knowledge(self) -> DeploymentKnowledge:
        """The deployment knowledge the detector consults."""
        return self._knowledge

    @property
    def metric(self) -> AnomalyMetric:
        """The anomaly metric in use."""
        return self._metric

    @property
    def threshold(self) -> float:
        """The trained detection threshold."""
        if self._threshold is None:
            raise RuntimeError(
                "the detector has no threshold yet; call train() or set one"
            )
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        self._threshold = float(value)

    @property
    def is_trained(self) -> bool:
        """Whether a threshold has been set."""
        return self._threshold is not None

    # -- training ------------------------------------------------------------

    def train(self, benign_score_sample: np.ndarray, tau: float = 0.99) -> float:
        """Set the threshold to the ``τ``-percentile of benign scores."""
        check_probability("tau", tau)
        self._threshold = derive_threshold(benign_score_sample, tau)
        return self._threshold

    @classmethod
    def from_training_data(
        cls,
        knowledge: DeploymentKnowledge,
        training: TrainingData,
        *,
        metric: Union[str, AnomalyMetric] = "diff",
        tau: float = 0.99,
    ) -> "LADDetector":
        """Build and train a detector from collected benign training data."""
        detector = cls(knowledge, metric=metric)
        scores = benign_scores(training, knowledge, detector.metric)
        detector.train(scores, tau=tau)
        return detector

    @classmethod
    def from_threshold_table(
        cls,
        knowledge: DeploymentKnowledge,
        table: ThresholdTable,
        *,
        metric: Union[str, AnomalyMetric] = "diff",
        tau: float = 0.99,
    ) -> "LADDetector":
        """Build a detector whose threshold comes from a :class:`ThresholdTable`."""
        detector = cls(knowledge, metric=metric)
        detector.threshold = table.threshold(detector.metric, tau)
        return detector

    # -- detection -------------------------------------------------------------

    def score(self, estimated_location, observation) -> Union[float, np.ndarray]:
        """Anomaly score of one node (or a batch) without thresholding."""
        return self._metric.score(self._knowledge, estimated_location, observation)

    def detect(self, estimated_location, observation) -> DetectionReport:
        """Full detection decision for a single node."""
        value = float(self.score(estimated_location, observation))
        return DetectionReport(
            score=value,
            threshold=self.threshold,
            anomalous=value > self.threshold,
            metric=self._metric.name,
        )

    def detect_batch(self, estimated_locations, observations) -> np.ndarray:
        """Boolean alarm mask for a batch of nodes."""
        scores = np.asarray(self.score(estimated_locations, observations))
        return scores > self.threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        thr = f"{self._threshold:.3f}" if self._threshold is not None else "untrained"
        return f"LADDetector(metric={self._metric.name}, threshold={thr})"
