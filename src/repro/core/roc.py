"""Receiver Operating Characteristic curves for the detection metrics.

The paper reports ROC curves (detection rate against false-positive rate,
obtained by sweeping the detection threshold) for different metrics, attack
classes and degrees of damage (Figures 4–6).  :class:`RocCurve` packages the
swept curve and provides the two read-outs the figures use: the detection
rate achievable at a given false-positive budget, and the area under the
curve as a scalar summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.stats import roc_points

__all__ = ["RocCurve", "compute_roc"]


@dataclass(frozen=True)
class RocCurve:
    """An ROC curve produced by sweeping the detection threshold.

    Attributes
    ----------
    thresholds:
        The swept threshold values.
    false_positive_rates:
        False-positive rate (benign samples flagged) per threshold.
    detection_rates:
        Detection rate (attacked samples flagged) per threshold.
    """

    thresholds: np.ndarray
    false_positive_rates: np.ndarray
    detection_rates: np.ndarray

    def __post_init__(self) -> None:
        if not (
            len(self.thresholds)
            == len(self.false_positive_rates)
            == len(self.detection_rates)
        ):
            raise ValueError("ROC arrays must have equal lengths")

    def detection_rate_at(self, false_positive_rate: float) -> float:
        """Largest detection rate achievable with FP ≤ *false_positive_rate*.

        This is how the fixed-FP figures (7–9) read a detection rate off the
        benign/attacked score distributions: the threshold is tightened as
        far as the false-positive budget allows.
        """
        if not 0.0 <= false_positive_rate <= 1.0:
            raise ValueError("false_positive_rate must lie in [0, 1]")
        mask = self.false_positive_rates <= false_positive_rate + 1e-12
        if not np.any(mask):
            return 0.0
        return float(np.max(self.detection_rates[mask]))

    def auc(self) -> float:
        """Area under the ROC curve (trapezoidal rule).

        A curve that never reaches FP = 0 is anchored at ``(0, 0)`` — the
        detection rate at an unobserved operating point must not be
        extrapolated from the leftmost measured point, which would
        over-credit the area.  When an FP = 0 point exists it anchors the
        curve itself.
        """
        order = np.argsort(self.false_positive_rates, kind="stable")
        fp_sorted = self.false_positive_rates[order]
        dr_sorted = self.detection_rates[order]
        left_dr = dr_sorted[0] if fp_sorted.size and fp_sorted[0] == 0.0 else 0.0
        fp = np.concatenate([[0.0], fp_sorted, [1.0]])
        dr = np.concatenate([[left_dr], dr_sorted, [1.0]])
        return float(np.trapezoid(dr, fp))

    def as_series(self) -> dict:
        """Plain-dict view (lists) for serialisation and reporting."""
        return {
            "false_positive_rates": self.false_positive_rates.tolist(),
            "detection_rates": self.detection_rates.tolist(),
            "thresholds": self.thresholds.tolist(),
        }

    def __len__(self) -> int:
        return int(len(self.thresholds))


def compute_roc(
    benign_scores: np.ndarray,
    attacked_scores: np.ndarray,
    *,
    num_thresholds: Optional[int] = None,
) -> RocCurve:
    """Build an :class:`RocCurve` from benign and attacked score samples."""
    thresholds, fp, dr = roc_points(
        benign_scores, attacked_scores, num_thresholds=num_thresholds
    )
    return RocCurve(
        thresholds=thresholds, false_positive_rates=fp, detection_rates=dr
    )
