"""Training-data collection for threshold derivation (paper Section 5.5).

The training procedure mirrors the paper's:

1. deploy simulated sensor networks from the deployment model;
2. pick random sensors and record their actual locations and honest
   observations;
3. run the chosen localization scheme to obtain estimated locations;
4. evaluate the detection metrics on the benign
   ``(estimated location, observation)`` pairs — the resulting empirical
   distribution yields the detection thresholds.

Because the benign estimated locations come from a real localization run,
the benign score distribution automatically absorbs the localization
scheme's own error, which is what makes the thresholds scheme-dependent
(Section 7.2) and what drives the density effect of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.metrics import AnomalyMetric, resolve_metric
from repro.deployment.knowledge import DeploymentKnowledge
from repro.localization.base import (
    BeaconInfrastructure,
    LocalizationContext,
    LocalizationScheme,
)
from repro.localization.beaconless import BeaconlessLocalizer
from repro.localization.beacons import beacon_contexts
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.utils.rng import as_generator
from repro.utils.validation import check_int

__all__ = ["TrainingData", "collect_training_data", "benign_scores"]


@dataclass
class TrainingData:
    """Benign samples collected from simulated deployments.

    Attributes
    ----------
    observations:
        Honest observation vectors, shape ``(k, n_groups)``.
    actual_locations:
        Ground-truth resident points, shape ``(k, 2)``.
    estimated_locations:
        Locations produced by the localization scheme, shape ``(k, 2)``.
    neighbor_counts:
        Total number of neighbours of each sampled node, shape ``(k,)``.
    """

    observations: np.ndarray
    actual_locations: np.ndarray
    estimated_locations: np.ndarray
    neighbor_counts: np.ndarray

    def __post_init__(self) -> None:
        self.observations = np.asarray(self.observations, dtype=np.float64)
        self.actual_locations = np.asarray(self.actual_locations, dtype=np.float64)
        self.estimated_locations = np.asarray(
            self.estimated_locations,
            dtype=np.float64,
        )
        self.neighbor_counts = np.asarray(self.neighbor_counts, dtype=np.int64)
        k = self.observations.shape[0]
        if (
            self.actual_locations.shape != (k, 2)
            or self.estimated_locations.shape != (k, 2)
            or self.neighbor_counts.shape != (k,)
        ):
            raise ValueError("training-data arrays have inconsistent shapes")

    @property
    def num_samples(self) -> int:
        """Number of benign samples collected."""
        return int(self.observations.shape[0])

    def localization_errors(self) -> np.ndarray:
        """Per-sample benign localization error ``|L_e − L_a|``."""
        diff = self.estimated_locations - self.actual_locations
        return np.hypot(diff[:, 0], diff[:, 1])


def collect_training_data(
    generator: NetworkGenerator,
    *,
    num_samples: int = 500,
    samples_per_network: int = 100,
    localizer: Optional[LocalizationScheme] = None,
    beacons: Optional[BeaconInfrastructure] = None,
    beacon_noise_std: float = 0.0,
    rng=None,
    backend=None,
) -> TrainingData:
    """Simulate deployments and collect benign training samples.

    Parameters
    ----------
    generator:
        The network generator describing the deployment to train for.
    num_samples:
        Total number of benign ``(observation, L_a, L_e)`` samples.
    samples_per_network:
        How many sensors to sample from each deployed network before a fresh
        network is generated (amortises the deployment cost while still
        averaging over deployment randomness).
    localizer:
        The localization scheme used to produce the estimated locations;
        defaults to the beaconless MLE scheme evaluated in the paper.
    beacons:
        Beacon infrastructure shared by every deployed network.  Required
        when *localizer* is beacon-based (``requires_beacons``): each
        sampled node's context then carries the audible beacons, the
        (optionally noisy) distance measurements and — for DV-Hop — the
        per-network flooding profile.
    beacon_noise_std:
        Standard deviation of the distance-measurement noise for the
        range-based schemes.
    rng:
        Seed or generator.
    backend:
        Array backend running the training pass' likelihood kernels
        (``None`` = the numpy reference); forwarded to the knowledge this
        pass builds.
    """
    check_int("num_samples", num_samples, minimum=1)
    check_int("samples_per_network", samples_per_network, minimum=1)
    generator_rng = as_generator(rng)
    localizer = localizer or BeaconlessLocalizer()
    if localizer.requires_beacons and beacons is None:
        raise ValueError(
            f"the {localizer.name!r} scheme is beacon-based: pass a "
            "BeaconInfrastructure (or configure a BeaconSpec on the session)"
        )
    knowledge = generator.knowledge(backend=backend)

    observations = []
    actual = []
    estimated = []
    neighbor_counts = []

    collected = 0
    while collected < num_samples:
        network = generator.generate(generator_rng)
        index = NeighborIndex(network)
        take = min(samples_per_network, num_samples - collected)
        nodes = generator_rng.choice(network.num_nodes, size=take, replace=False)
        obs = index.observations_of_nodes(nodes)
        counts = obs.sum(axis=1).astype(np.int64)
        if isinstance(localizer, BeaconlessLocalizer):
            est = localizer.localize_observations(knowledge, obs)
        else:
            if localizer.requires_beacons:
                contexts = beacon_contexts(
                    network.positions[nodes],
                    beacons,
                    localizer,
                    network=network,
                    observations=obs,
                    knowledge=knowledge,
                    noise_std=beacon_noise_std,
                    rng=generator_rng,
                    nodes=nodes,
                )
            else:
                contexts = [
                    LocalizationContext(
                        observation=obs[row],
                        knowledge=knowledge,
                        true_position=network.positions[node],
                    )
                    for row, node in enumerate(nodes)
                ]
            results = localizer.localize_many(contexts, rng=generator_rng)
            est = np.stack([result.position for result in results])

        observations.append(obs)
        actual.append(network.positions[nodes])
        estimated.append(est)
        neighbor_counts.append(counts)
        collected += take

    return TrainingData(
        observations=np.vstack(observations),
        actual_locations=np.vstack(actual),
        estimated_locations=np.vstack(estimated),
        neighbor_counts=np.concatenate(neighbor_counts),
    )


def benign_scores(
    training: TrainingData,
    knowledge: DeploymentKnowledge,
    metric: Union[str, AnomalyMetric],
) -> np.ndarray:
    """Metric scores of the benign training samples (larger = more anomalous)."""
    metric = resolve_metric(metric)
    expected = knowledge.expected_observation(training.estimated_locations)
    return np.asarray(
        metric.compute(training.observations, expected, group_size=knowledge.group_size)
    )
