"""Expected observations at a claimed location (paper Eq. (2)).

Thin functional wrappers around
:class:`~repro.deployment.knowledge.DeploymentKnowledge` so that detection
code can be written against plain arrays.
"""

from __future__ import annotations

import numpy as np

from repro.deployment.knowledge import DeploymentKnowledge

__all__ = ["membership_probabilities", "expected_observation"]


def membership_probabilities(
    knowledge: DeploymentKnowledge, locations
) -> np.ndarray:
    """``g_i(θ)`` for every location and group, shape ``(k, n_groups)``."""
    return knowledge.membership_probabilities(locations)


def expected_observation(knowledge: DeploymentKnowledge, locations) -> np.ndarray:
    """Expected observation ``µ_i = m · g_i(θ)``, shape ``(k, n_groups)``.

    This is Equation (2) of the paper: if the sensor truly sat at ``θ`` and
    no adversary interfered, it would expect to see ``µ_i`` neighbours from
    deployment group ``i``.
    """
    return knowledge.expected_observation(locations)
