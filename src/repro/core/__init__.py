"""The LAD detection scheme — the paper's primary contribution (Section 5).

The pipeline is:

1. compute the expected observation ``µ`` at the estimated location
   (:mod:`repro.core.expected`);
2. score the inconsistency between the actual observation ``o`` and ``µ``
   with one of the three metrics (:mod:`repro.core.metrics`);
3. compare the score against a threshold trained on benign deployments
   (:mod:`repro.core.training`, :mod:`repro.core.thresholds`);
4. raise an alarm when the score exceeds the threshold
   (:mod:`repro.core.detector`).

:mod:`repro.core.roc` and :mod:`repro.core.evaluation` provide the
evaluation machinery (ROC curves, detection rate / false-positive rate under
the attack models of Section 6) used by the figure-reproduction benchmarks.
"""

from repro.core.expected import expected_observation, membership_probabilities
from repro.core.metrics import (
    AnomalyMetric,
    DiffMetric,
    AddAllMetric,
    ProbabilityMetric,
    METRICS,
    resolve_metric,
    ALL_METRICS,
)
from repro.core.thresholds import derive_threshold, ThresholdTable
from repro.core.verdict import Verdict, verdicts_from_scores
from repro.core.training import TrainingData, collect_training_data, benign_scores
from repro.core.detector import LADDetector, DetectionReport
from repro.core.roc import RocCurve, compute_roc
from repro.core.evaluation import (
    attacked_scores_from_observations,
    attacked_scores_for_victims,
    detection_rate_at_false_positive,
    evaluate_detection,
    DetectionOutcome,
)

__all__ = [
    "expected_observation",
    "membership_probabilities",
    "AnomalyMetric",
    "DiffMetric",
    "AddAllMetric",
    "ProbabilityMetric",
    "METRICS",
    "resolve_metric",
    "ALL_METRICS",
    "derive_threshold",
    "ThresholdTable",
    "Verdict",
    "verdicts_from_scores",
    "TrainingData",
    "collect_training_data",
    "benign_scores",
    "LADDetector",
    "DetectionReport",
    "RocCurve",
    "compute_roc",
    "attacked_scores_from_observations",
    "attacked_scores_for_victims",
    "detection_rate_at_false_positive",
    "evaluate_detection",
    "DetectionOutcome",
]
