"""Per-decision verdicts — the shared currency of offline and online LAD.

A :class:`Verdict` is the answer to one location-verification question:
"is this (claimed location, observation) pair consistent with the
deployment knowledge?"  It carries the metric score, the threshold in
force, the resulting decision and the false-positive budget the threshold
was trained at — everything needed to audit the decision later.

Both evaluation paths produce the *same* type:

* the batch path — :meth:`repro.experiments.session.LadSession.outcome`
  wraps its score samples in a :class:`DetectionOutcome
  <repro.core.evaluation.DetectionOutcome>` whose :meth:`verdicts` method
  yields one ``Verdict`` per victim;
* the serving path — :class:`repro.serving.DetectionService` returns one
  ``Verdict`` per :class:`~repro.serving.LocationClaim`, with the claim id
  and the observed service latency attached.

Because the two paths share the dataclass (and derive thresholds with the
same :func:`repro.core.thresholds.derive_threshold` rule), offline and
online decisions are comparable by construction: a claim scored online
flags if and only if the same score would have counted as detected in the
offline sweep at the same false-positive budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Verdict", "verdicts_from_scores"]


@dataclass(frozen=True)
class Verdict:
    """One location-verification decision.

    Attributes
    ----------
    score:
        The anomaly-metric value (larger = more anomalous).
    threshold:
        The detection threshold in force when the decision was made.
    anomalous:
        ``True`` when ``score > threshold`` — the claim is flagged.
    metric:
        Canonical name of the metric that produced the score.
    false_positive_rate:
        The nominal false-positive budget the threshold was trained at.
    claim_id:
        Identifier of the claim this verdict answers (serving path only;
        ``None`` for batch-evaluation verdicts).
    latency_ms:
        Wall-clock milliseconds from claim admission to verdict (serving
        path only; ``None`` for batch-evaluation verdicts).
    error:
        Why the claim could not be scored (e.g. non-finite coordinates).
        An error verdict is always treated as anomalous — a malformed
        claim must never be accepted — but carries no meaningful score.
    """

    score: float
    threshold: float
    anomalous: bool
    metric: str
    false_positive_rate: float
    claim_id: Optional[str] = None
    latency_ms: Optional[float] = None
    error: Optional[str] = None

    @property
    def decision(self) -> str:
        """``"flag"``/``"accept"``, or ``"error"`` for unscorable claims."""
        if self.error is not None:
            return "error"
        return "flag" if self.anomalous else "accept"

    def with_latency(self, latency_ms: float) -> "Verdict":
        """A copy of the verdict with the observed service latency set."""
        return replace(self, latency_ms=float(latency_ms))

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable rendering (used by the JSONL transport)."""
        payload: Dict[str, object] = {
            "decision": self.decision,
            "threshold": self.threshold,
            "metric": self.metric,
            "false_positive_rate": self.false_positive_rate,
        }
        if np.isfinite(self.score):
            payload["score"] = self.score
        if self.claim_id is not None:
            payload["id"] = self.claim_id
        if self.latency_ms is not None:
            payload["latency_ms"] = self.latency_ms
        if self.error is not None:
            payload["error"] = self.error
        return payload


def verdicts_from_scores(
    scores: np.ndarray,
    *,
    threshold: float,
    metric: str,
    false_positive_rate: float,
    claim_ids: Optional[Sequence[Optional[str]]] = None,
) -> List[Verdict]:
    """One :class:`Verdict` per score under a single trained threshold.

    The decision rule is the uniform LAD one — flag when
    ``score > threshold`` — applied elementwise, so a batch of verdicts is
    exactly the per-element decisions of the vectorised evaluation path.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"expected a 1-D score sample, got shape {scores.shape}")
    if claim_ids is not None and len(claim_ids) != scores.shape[0]:
        raise ValueError("claim_ids and scores disagree in length")
    threshold = float(threshold)
    flags = scores > threshold
    return [
        Verdict(
            score=float(score),
            threshold=threshold,
            anomalous=bool(flag),
            metric=metric,
            false_positive_rate=float(false_positive_rate),
            claim_id=None if claim_ids is None else claim_ids[i],
        )
        for i, (score, flag) in enumerate(zip(scores, flags))
    ]
