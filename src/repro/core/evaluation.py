"""Detection-rate / false-positive evaluation under attack (Section 7.1).

This module implements the paper's evaluation procedure as reusable
building blocks:

1. pick victim nodes from a deployed network and record their honest
   observations ``a`` and actual locations ``L_a``;
2. simulate a localization attack of degree ``D`` by drawing the spoofed
   estimated location ``L_e`` uniformly at distance ``D`` from ``L_a``;
3. taint each victim's observation with the greedy adversary (given the
   attack class, the detection metric under evaluation, and the fraction
   ``x`` of compromised neighbours);
4. score the tainted ``(L_e, o)`` pairs with the detection metric.

The resulting attacked scores, combined with benign scores from
:mod:`repro.core.training`, yield ROC curves and detection rates at a fixed
false-positive budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np

from repro.core.metrics import AnomalyMetric, resolve_metric
from repro.core.roc import RocCurve, compute_roc
from repro.core.verdict import Verdict, verdicts_from_scores
from repro.deployment.knowledge import DeploymentKnowledge
from repro.network.neighbors import NeighborIndex
from repro.network.network import SensorNetwork
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover - imported for type checkers only
    from repro.attacks.constraints import AttackClass

__all__ = [
    "DetectionOutcome",
    "attack_observations",
    "attacked_scores_from_observations",
    "attacked_scores_for_victims",
    "detection_rate_at_false_positive",
    "evaluate_detection",
]


@dataclass(frozen=True, eq=False)
class DetectionOutcome:
    """Full result of one detection evaluation — the batch-path verdict type.

    This is what :meth:`LadSession.outcome` and
    :meth:`LadSession.detection_rate` return, and what
    :meth:`SweepRunner.detection_rates` maps every sweep point to.  It
    carries the operating point (detection rate, threshold, false-positive
    budget), the underlying score samples, and — via :meth:`verdicts` —
    the same per-decision :class:`~repro.core.verdict.Verdict` objects the
    online :class:`~repro.serving.DetectionService` emits, so offline and
    online decisions are comparable by construction.

    Attributes
    ----------
    benign_scores, attacked_scores:
        The underlying score samples.
    detection_rate:
        Detection rate at the requested false-positive budget.
    false_positive_rate:
        The false-positive budget the detection rate was read at.
    threshold:
        The threshold realising that operating point.
    metric:
        Canonical name of the metric that produced the scores (``""`` when
        the caller scored raw arrays without naming the metric).
    """

    benign_scores: np.ndarray
    attacked_scores: np.ndarray
    detection_rate: float
    false_positive_rate: float
    threshold: float
    metric: str = ""

    @cached_property
    def roc(self) -> RocCurve:
        """The full ROC curve over the score samples (computed lazily)."""
        return compute_roc(self.benign_scores, self.attacked_scores)

    def verdicts(self) -> List[Verdict]:
        """One :class:`Verdict` per attacked sample at this operating point.

        These are the batch path's per-decision records: the same dataclass
        (and the same ``score > threshold`` rule) the streaming
        :class:`~repro.serving.DetectionService` returns per claim.
        """
        return verdicts_from_scores(
            self.attacked_scores,
            threshold=self.threshold,
            metric=self.metric,
            false_positive_rate=self.false_positive_rate,
        )

    def __iter__(self):
        """Unpack as ``(detection_rate, threshold)``.

        Kept so the historical tuple idiom ``rate, thr = outcome`` keeps
        reading the documented operating point.
        """
        return iter((self.detection_rate, self.threshold))

    def __eq__(self, other):
        """Value equality, with the score arrays compared elementwise.

        The resumability tests compare whole ``{point: outcome}`` maps
        across warm/cold runs, so equality must be well-defined for the
        array fields (the generated dataclass ``==`` would raise on them).
        """
        if not isinstance(other, DetectionOutcome):
            return NotImplemented
        return (
            self.detection_rate == other.detection_rate
            and self.false_positive_rate == other.false_positive_rate
            and self.threshold == other.threshold
            and self.metric == other.metric
            and np.array_equal(self.benign_scores, other.benign_scores)
            and np.array_equal(self.attacked_scores, other.attacked_scores)
        )


def attacked_scores_from_observations(
    knowledge: DeploymentKnowledge,
    honest_observations: np.ndarray,
    actual_locations: np.ndarray,
    *,
    metric: Union[str, AnomalyMetric],
    attack_class: Union[str, "AttackClass"] = "dec_bounded",
    degree_of_damage: float = 120.0,
    compromised_fraction: float = 0.10,
    rng=None,
    localizer=None,
) -> np.ndarray:
    """Attacked anomaly scores from pre-computed honest observations.

    This is the inner loop of the evaluation procedure; it is split out so
    that parameter sweeps (many degrees of damage, many compromise levels)
    can reuse the same honest observations instead of re-running neighbour
    discovery for every parameter combination.

    Parameters
    ----------
    knowledge:
        Deployment knowledge shared by the victims.
    honest_observations:
        Honest observation vectors ``a``, shape ``(k, n_groups)``.
    actual_locations:
        The victims' actual locations ``L_a``, shape ``(k, 2)``.
    metric, attack_class, degree_of_damage, compromised_fraction, rng, localizer:
        As in :func:`attacked_scores_for_victims` /
        :func:`attack_observations`.
    """
    metric = resolve_metric(metric)
    tainted, spoofed, expected = attack_observations(
        knowledge,
        honest_observations,
        actual_locations,
        metric=metric,
        attack_class=attack_class,
        degree_of_damage=degree_of_damage,
        compromised_fraction=compromised_fraction,
        rng=rng,
        localizer=localizer,
    )
    scores = metric.compute(tainted, expected, group_size=knowledge.group_size)
    return np.asarray(scores, dtype=np.float64)


def attack_observations(
    knowledge: DeploymentKnowledge,
    honest_observations: np.ndarray,
    actual_locations: np.ndarray,
    *,
    metric: Union[str, AnomalyMetric],
    attack_class: Union[str, "AttackClass"] = "dec_bounded",
    degree_of_damage: float = 120.0,
    compromised_fraction: float = 0.10,
    rng=None,
    localizer=None,
):
    """Run one attack and return its raw claim material.

    Steps 2–3 of the evaluation procedure without the scoring step:
    spoof each victim's location at distance ``D`` and taint its
    observation with the greedy adversary.  Returns the triple
    ``(tainted_observations, spoofed_locations, expected_observations)``
    — the first two are exactly what a compromised node would submit to
    the online detector (see :meth:`LadSession.attacked_claims
    <repro.experiments.session.LadSession.attacked_claims>`), the third
    is the ``µ`` at the spoofed locations that scoring reuses.

    *localizer* is the localization scheme under attack (or ``None`` for
    the abstract D-attack).  The paper's Dec-* classes ignore it;
    modality-targeted classes (:mod:`repro.attacks.modality`) use it to
    gate their displacement — an RSSI amplifier displaces nothing under a
    hop-count scheme — and, because they attack the measurement channel
    rather than the neighbour protocol, skip the greedy observation taint
    entirely (``taints_observation = False``).
    """
    from repro.attacks.base import AttackBudget
    from repro.attacks.constraints import resolve_attack_class
    from repro.attacks.greedy import GreedyMetricMinimizer
    from repro.attacks.localization_attacks import DisplacementAttack

    metric = resolve_metric(metric)
    attack_class = resolve_attack_class(attack_class)
    check_positive("degree_of_damage", degree_of_damage, strict=False)
    check_fraction("compromised_fraction", compromised_fraction)
    generator = as_generator(rng)

    honest = np.asarray(honest_observations, dtype=np.float64)
    actual = np.asarray(actual_locations, dtype=np.float64)
    if honest.ndim != 2 or actual.shape != (honest.shape[0], 2):
        raise ValueError("honest_observations and actual_locations shapes disagree")

    damage = attack_class.effective_damage(degree_of_damage, localizer)
    displacement = DisplacementAttack(damage)
    spoofed = displacement.spoof_locations(
        actual, generator, region=knowledge.region
    )
    expected = knowledge.expected_observation(spoofed)
    if not attack_class.taints_observation:
        # Physical-layer adversary: the neighbour counts stay honest.
        return honest.copy(), spoofed, expected
    adversary = GreedyMetricMinimizer(metric=metric, attack_class=attack_class)
    budgets = [
        AttackBudget.from_fraction(int(round(count)), compromised_fraction)
        for count in honest.sum(axis=1)
    ]
    tainted = adversary.taint_batch(
        honest, expected, budgets, group_size=knowledge.group_size
    )
    return tainted, spoofed, expected


def attacked_scores_for_victims(
    network: SensorNetwork,
    knowledge: DeploymentKnowledge,
    victims: Sequence[int],
    *,
    metric: Union[str, AnomalyMetric],
    attack_class: Union[str, AttackClass] = "dec_bounded",
    degree_of_damage: float = 120.0,
    compromised_fraction: float = 0.10,
    index: Optional[NeighborIndex] = None,
    rng=None,
    localizer=None,
) -> np.ndarray:
    """Anomaly scores of attacked victims (Section 7.1 procedure).

    Parameters
    ----------
    network:
        A deployed sensor network.
    knowledge:
        The matching deployment knowledge.
    victims:
        Node indices to attack.
    metric:
        The detection metric under evaluation (the greedy adversary
        minimises this same metric — the worst case for the defender).
    attack_class:
        ``"dec_bounded"`` (default, the stronger adversary) or
        ``"dec_only"``.
    degree_of_damage:
        The attack's targeted localization error ``D`` in metres.
    compromised_fraction:
        Fraction ``x`` of each victim's neighbours under adversary control.
    index:
        Optional pre-built neighbour index for *network*.
    rng:
        Seed or generator.
    localizer:
        The localization scheme under attack (modality-targeted attack
        classes gate their displacement on it; ``None`` = abstract
        D-attack).
    """
    idx = index or NeighborIndex(network)
    victims = np.asarray(victims, dtype=np.int64)
    honest = idx.observations_of_nodes(victims)
    actual = network.positions[victims]
    return attacked_scores_from_observations(
        knowledge,
        honest,
        actual,
        metric=metric,
        attack_class=attack_class,
        degree_of_damage=degree_of_damage,
        compromised_fraction=compromised_fraction,
        rng=rng,
        localizer=localizer,
    )


def detection_rate_at_false_positive(
    benign_scores: np.ndarray,
    attacked_scores: np.ndarray,
    false_positive_rate: float = 0.01,
) -> tuple[float, float]:
    """Detection rate (and the threshold used) at a false-positive budget.

    The threshold is set to the tightest value whose benign false-positive
    rate does not exceed the budget — exactly the ``τ``-percentile training
    rule of Section 5.5 applied to the benign sample.
    """
    check_fraction("false_positive_rate", false_positive_rate)
    benign_scores = np.asarray(benign_scores, dtype=np.float64)
    attacked_scores = np.asarray(attacked_scores, dtype=np.float64)
    from repro.core.thresholds import derive_threshold

    threshold = derive_threshold(benign_scores, 1.0 - false_positive_rate)
    detection_rate = float(np.mean(attacked_scores > threshold))
    return detection_rate, threshold


def evaluate_detection(
    benign_scores: np.ndarray,
    attacked_scores: np.ndarray,
    *,
    false_positive_rate: float = 0.01,
    metric: Union[str, AnomalyMetric, None] = None,
) -> DetectionOutcome:
    """Bundle a fixed-FP operating point (plus a lazy ROC) into one outcome."""
    benign_scores = np.asarray(benign_scores, dtype=np.float64)
    attacked_scores = np.asarray(attacked_scores, dtype=np.float64)
    detection_rate, threshold = detection_rate_at_false_positive(
        benign_scores, attacked_scores, false_positive_rate
    )
    return DetectionOutcome(
        benign_scores=benign_scores,
        attacked_scores=attacked_scores,
        detection_rate=detection_rate,
        false_positive_rate=false_positive_rate,
        threshold=threshold,
        metric="" if metric is None else resolve_metric(metric).name,
    )
