"""Epoch throughput of the temporal engine vs per-claim re-scoring.

The discrete-event engine's design claim (see ``repro/events/temporal.py``)
is that an ``E``-epoch run costs ``E`` amortised *batch* passes — each
epoch re-observes the evolved network once and scores the whole victim
batch with one ``expected_observation`` + ``metric.compute`` call — rather
than the ``E * V`` per-claim Python loop an online deployment would
naively run.  This benchmark drives the identical timeline (per-epoch
jitter over a mobile network) through both implementations, asserts the
scores are bit-identical, and tracks epochs/sec as the speedup ratio.

The measurement lands in ``BENCH_pr.json`` (``temporal_epoch_batch``
record) and CI fails when the ratio drops below the floor committed in
``benchmarks/BENCH_baseline.json``.
"""

import time

import numpy as np

from benchmarks.bench_records import record_benchmark
from benchmarks.conftest import BENCH_SEED
from repro.events import EventSpec, TimelineSpec
from repro.events.temporal import TemporalWorld, _simulate_point
from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.experiments.sweep import SweepPoint
from repro.utils.rng import RandomState

#: Scoring epochs of the benchmark timeline.
EPOCHS = 8

#: Timed rounds per implementation; the best round counts.
ROUNDS = 3

#: The sweep point both implementations run (parameters only matter for the
#: stream name here — the timeline keeps every epoch benign, see below).
POINT = SweepPoint(
    metric="diff",
    attack="dec_bounded",
    degree_of_damage=120.0,
    compromised_fraction=0.1,
)


def _bench_session() -> LadSession:
    config = SimulationConfig(
        group_size=100,
        num_training_samples=40,
        training_samples_per_network=20,
        num_victims=240,
        victims_per_network=60,
        gz_omega=500,
        seed=BENCH_SEED,
    )
    return LadSession(config)


def _bench_timeline() -> TimelineSpec:
    """Per-epoch jitter; the attack-on event sits beyond the horizon.

    Scheduling the switch-on after the last epoch keeps every epoch on the
    benign scoring path (``starts_attacked`` is False), which is the path
    the naive per-claim reference below can replicate exactly.
    """
    return TimelineSpec(
        epochs=EPOCHS,
        events=(
            EventSpec(
                kind="mobility",
                action="jitter",
                period=1.0,
                start=1.0,
                fraction=0.5,
                amplitude=5.0,
            ),
            EventSpec(kind="attack", action="on", at=(float(EPOCHS + 10),)),
        ),
    )


def _run_engine(session, timeline):
    """The vectorised engine: one batch pass per epoch."""
    world = TemporalWorld.from_session(session)
    return _simulate_point(
        world, session.knowledge, session.config.seed, timeline, POINT
    )["scores"]


def _run_naive(session, timeline):
    """Reference: identical world evolution, but one claim handled at a time.

    This is the online deployment the engine replaces: per epoch every
    victim's observation is collected with the per-node reference query
    (``batched=False`` — guaranteed bit-identical to the one-pass kernel
    for deterministic radios) and each claim is scored individually.
    """
    from repro.core.metrics import resolve_metric
    from repro.events.engine import EventEngine
    from repro.network.neighbors import NeighborIndex

    metric = resolve_metric(POINT.metric)
    knowledge = session.knowledge
    seed = session.config.seed
    world = TemporalWorld.from_session(session)
    engine = EventEngine()
    for firing in timeline.compile(seed):
        engine.push(firing.time, firing)
    scores = np.full((timeline.epochs, world.num_victims), np.nan)
    for epoch, now in enumerate(timeline.epoch_times()):
        for firing in engine.pop_due(now):
            rng = RandomState(seed).stream(firing.stream_name())
            world.apply_mobility(
                firing.spec.action,
                firing.spec.fraction,
                firing.spec.amplitude,
                rng,
            )
        observation_rows = []
        position_rows = []
        for cell in world._cells:
            index = NeighborIndex(cell.network)
            observation_rows.append(
                index.observations_of_nodes(cell.victims, batched=False)
            )
            position_rows.append(cell.network.positions[cell.victims])
        observations = np.vstack(observation_rows)
        actual = np.vstack(position_rows)
        for victim in range(world.num_victims):
            expected = knowledge.expected_observation(actual[victim : victim + 1])
            scores[epoch, victim] = np.asarray(
                metric.compute(
                    observations[victim : victim + 1],
                    expected,
                    group_size=knowledge.group_size,
                ),
                dtype=np.float64,
            )[0]
    return scores


def test_temporal_epoch_throughput():
    """Batched epoch scoring must beat the per-claim loop, bit-identically."""
    session = _bench_session()
    timeline = _bench_timeline()

    # Warm both paths (g(z) table, neighbour kernels, numpy caches).
    engine_scores = _run_engine(session, timeline)
    naive_scores = _run_naive(session, timeline)
    np.testing.assert_array_equal(engine_scores, naive_scores)

    def best_of(runner):
        best = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            scores = runner(session, timeline)
            elapsed = time.perf_counter() - start
            np.testing.assert_array_equal(scores, engine_scores)
            best = elapsed if best is None else min(best, elapsed)
        return best

    engine_time = best_of(_run_engine)
    naive_time = best_of(_run_naive)

    speedup = naive_time / engine_time
    engine_eps = EPOCHS / engine_time
    naive_eps = EPOCHS / naive_time
    record_benchmark(
        "temporal_epoch_batch",
        speedup=speedup,
        engine_epochs_per_sec=engine_eps,
        naive_epochs_per_sec=naive_eps,
        epochs=EPOCHS,
        victims=session.config.num_victims,
    )
    print(
        f"\ntemporal epochs: engine {engine_eps:.1f} epochs/s vs per-claim "
        f"{naive_eps:.1f} epochs/s over {session.config.num_victims} victims: "
        f"speedup {speedup:.1f}x"
    )
    assert speedup > 1.0
