"""Ablation benchmark — accuracy and speed of the ``g(z)`` table (Section 3.3).

The paper argues that the exact Eq. (1) is too expensive for sensors and
that a table of ``ω`` sub-ranges with interpolation suffices.  This
benchmark quantifies both claims: the maximum interpolation error as a
function of ``ω`` (it is already negligible for a few hundred entries) and
the speed of a table lookup versus exact quadrature.
"""

import numpy as np

from repro.deployment.gz import GzTable, gz_exact, gz_quadrature

R = 100.0
SIGMA = 50.0
Z_MAX = 600.0

#: Table resolutions studied by the ablation.
OMEGAS = (25, 50, 100, 250, 500, 1000)


def test_gz_table_accuracy_vs_omega(benchmark):
    zs = np.linspace(0.0, Z_MAX, 1500)
    exact = gz_exact(zs, R, SIGMA)

    def build_and_measure():
        rows = []
        for omega in OMEGAS:
            table = GzTable(R, SIGMA, omega=omega, z_max=Z_MAX)
            err = float(np.max(np.abs(exact - table.table(zs))))
            rows.append((omega, err))
        return rows

    rows = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    print()
    print("-- g(z) table accuracy (Section 3.3 ablation) --")
    print(f"{'omega':>8} {'max abs error':>15}")
    for omega, err in rows:
        print(f"{omega:>8} {err:>15.2e}")

    errors = [err for _, err in rows]
    # Error decreases with omega and is tiny for the paper-scale table.
    assert errors[-1] < 1e-4
    assert errors[-1] <= errors[0]


def test_gz_table_lookup_speed(benchmark):
    table = GzTable(R, SIGMA, omega=1000, z_max=Z_MAX)
    queries = np.random.default_rng(0).uniform(0.0, Z_MAX, size=100_000)

    result = benchmark(lambda: table(queries))
    assert result.shape == queries.shape


def test_gz_exact_quadrature_speed(benchmark):
    """Reference cost of evaluating Eq. (1) directly (vectorised Gauss-Legendre)."""
    queries = np.random.default_rng(1).uniform(0.0, Z_MAX, size=2_000)
    result = benchmark(lambda: gz_quadrature(queries, R, SIGMA))
    assert result.shape == queries.shape
