"""Figure 9 benchmark — detection rate vs network density (``DR-m-x-D``).

Paper setting: FP = 1 %, Diff metric, Dec-Bounded attacks, panels for
D ∈ {80, 100, 160}, curves for x ∈ {10, 20, 30} %, m swept 100 .. 1000.
Expected shape: detection improves with density, because the beaconless
localization gets more accurate and the benign threshold tightens.

This is the most expensive figure (every density point needs its own
threshold training on a network of up to 100 x m nodes), so the benchmark
uses a reduced density sweep; pass ``group_sizes`` to ``fig9.run`` for the
full 100..1000 range.
"""

import numpy as np

from benchmarks.conftest import bench_config
from repro.experiments.figures import fig9
from repro.experiments.reporting import format_figure

#: Densities swept by the benchmark (paper: 100 .. 1000).
BENCH_GROUP_SIZES = (100, 300, 600)


def test_fig9_detection_rate_vs_density(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: fig9.run(config=config, group_sizes=BENCH_GROUP_SIZES),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(result))

    # Density helps (or at least does not hurt) for the high-damage panel.
    panel = result.get_panel("D=160")
    for series in panel.series:
        ys = np.array(series.y)
        assert ys[-1] >= ys[0] - 0.1
        assert ys[-1] > 0.5
