"""Figure 8 benchmark — detection rate vs node-compromise percentage (``DR-x-D``).

Paper setting: FP = 1 %, m = 300, Diff metric, Dec-Bounded attacks,
D ∈ {80, 120, 160}, x swept 0 .. 60 %.
Expected shape: larger degrees of damage tolerate more compromise; the
D=160 curve stays high well past the point where the D=80 curve collapses.
"""

import numpy as np

from repro.experiments.figures import fig8
from repro.experiments.reporting import format_figure


def test_fig8_detection_rate_vs_compromise(benchmark, paper_simulation):
    result = benchmark.pedantic(
        lambda: fig8.run(simulation=paper_simulation),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(result))

    panel = result.get_panel("DR-x-D")
    d80 = np.array(panel.get_series("D=80").y)
    d160 = np.array(panel.get_series("D=160").y)
    # More compromise never helps detection (allow small Monte-Carlo noise).
    for series in panel.series:
        ys = np.array(series.y)
        assert ys[-1] <= ys[0] + 0.1
    # Larger damage is more resilient to compromise on average.
    assert d160.mean() >= d80.mean() - 0.05
