"""Looped vs batched vs pruned hot paths of the evaluation pipeline.

The paper's evaluation scores thousands of ``(observation, estimated
location)`` pairs; this benchmark tracks the kernels that used to pay a
Python-level loop (or a dense group sweep) per victim:

* :meth:`BeaconlessLocalizer.localize_observations` — per-row coarse-to-fine
  grid search vs the shared-lattice batched engine;
* :meth:`NeighborIndex.observations_of_nodes` — per-node KD-tree queries vs
  the one-pass vectorised collection;
* the active-group pruned refinement vs the dense batched engine, measured
  on a 1024-group deployment where only a small fraction of groups is
  within reach of any candidate.

Every comparison asserts that the fast path reproduces the reference output
exactly, so the speedup numbers are for identical results.  The measured
speedups and wall times are recorded via
:func:`benchmarks.bench_records.record_benchmark`; CI writes them to
``BENCH_pr.json`` and fails when a tracked speedup drops below the floor in
``benchmarks/BENCH_baseline.json`` (``scripts/check_bench_regression.py``),
which replaces the old ``LAD_BENCH_MIN_*`` environment gates.
"""

import time

import numpy as np
import pytest

from benchmarks.bench_records import record_benchmark
from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.models import GridDeploymentModel, paper_deployment_model
from repro.localization.beaconless import BeaconlessLocalizer
from repro.localization.beacons import BeaconSpec, beacon_contexts
from repro.localization.centroid import CentroidLocalizer
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio
from repro.types import PAPER_REGION, Region

#: Number of victims localized by the batched-localization comparison.
NUM_VICTIMS = 200

#: Nodes localized by the batched-centroid comparison (the per-row loop is
#: pure Python overhead, so a training-pass-sized batch shows the gap).
NUM_CENTROID_NODES = 512

#: Victims localized by the pruned-vs-dense comparison (the dense engine at
#: 1024 groups is expensive — keep the reference measurement affordable).
NUM_PRUNED_VICTIMS = 150


@pytest.fixture(scope="module")
def paper_network():
    generator = NetworkGenerator(
        paper_deployment_model(), group_size=300, radio=UnitDiskRadio(100.0)
    )
    network = generator.generate(rng=11)
    knowledge = generator.knowledge(omega=1000)
    return network, knowledge


@pytest.fixture(scope="module")
def victim_observations(paper_network):
    network, _ = paper_network
    index = NeighborIndex(network)
    rng = np.random.default_rng(11)
    nodes = rng.choice(network.num_nodes, size=NUM_VICTIMS, replace=False)
    return nodes, index.observations_of_nodes(nodes)


@pytest.fixture(scope="module")
def wide_network():
    """1024 deployment groups at the paper's density (100 m grid spacing).

    The support radius of the paper parameters (R = 100 m, σ = 50 m) is
    ~515 m, so each candidate interacts with only ~8 % of the groups —
    the regime the active-group pruning targets.
    """
    model = GridDeploymentModel(
        region=Region(0.0, 0.0, 3200.0, 3200.0),
        rows=32,
        cols=32,
        distribution=GaussianResidentDistribution(50.0),
    )
    generator = NetworkGenerator(
        model=model, group_size=100, radio=UnitDiskRadio(100.0)
    )
    network = generator.generate(rng=11)
    knowledge = generator.knowledge(omega=1000)
    return network, knowledge


def _best_of(callable_, rounds):
    best, result = np.inf, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_localization_speedup(paper_network, victim_observations):
    """Batched localization of 200 victims: identical output, tracked speedup."""
    _, knowledge = paper_network
    _, observations = victim_observations
    localizer = BeaconlessLocalizer()

    # Warm both paths (table construction, numpy caches) before timing.
    localizer.localize_observations(knowledge, observations[:4])
    localizer.localize_observations(knowledge, observations[:4], batched=False)

    loop_time, loop_estimates = _best_of(
        lambda: localizer.localize_observations(
            knowledge, observations, batched=False
        ),
        rounds=2,
    )
    batch_time, batch_estimates = _best_of(
        lambda: localizer.localize_observations(knowledge, observations),
        rounds=3,
    )

    np.testing.assert_array_equal(batch_estimates, loop_estimates)
    speedup = loop_time / batch_time
    record_benchmark(
        "batched_localization",
        speedup=speedup,
        loop_seconds=loop_time,
        batch_seconds=batch_time,
        victims=NUM_VICTIMS,
    )
    print(
        f"\nbatched localization: loop {loop_time * 1000:.0f} ms, "
        f"batch {batch_time * 1000:.0f} ms, speedup {speedup:.1f}x "
        f"({NUM_VICTIMS} victims)"
    )
    assert speedup > 1.0


def test_batched_centroid_speedup(paper_network):
    """Batched centroid localization of a training-pass-sized node batch:
    bit-identical to the per-row loop, tracked speedup."""
    network, _ = paper_network
    rng = np.random.default_rng(17)
    nodes = rng.choice(network.num_nodes, size=NUM_CENTROID_NODES, replace=False)
    beacons = BeaconSpec(count=25).build(PAPER_REGION)
    localizer = CentroidLocalizer()
    contexts = beacon_contexts(network.positions[nodes], beacons, localizer)

    localizer.localize_many(contexts[:4])
    [localizer.localize(ctx) for ctx in contexts[:4]]

    loop_time, looped = _best_of(
        lambda: [localizer.localize(ctx) for ctx in contexts], rounds=2
    )
    batch_time, batched = _best_of(
        lambda: localizer.localize_many(contexts), rounds=3
    )

    np.testing.assert_array_equal(
        np.stack([r.position for r in batched]),
        np.stack([r.position for r in looped]),
    )
    speedup = loop_time / batch_time
    record_benchmark(
        "batched_centroid",
        speedup=speedup,
        loop_seconds=loop_time,
        batch_seconds=batch_time,
        nodes=NUM_CENTROID_NODES,
        beacons=beacons.num_beacons,
    )
    print(
        f"\nbatched centroid: loop {loop_time * 1000:.1f} ms, "
        f"batch {batch_time * 1000:.1f} ms, speedup {speedup:.1f}x "
        f"({NUM_CENTROID_NODES} nodes, {beacons.num_beacons} beacons)"
    )
    assert speedup > 1.0


def test_one_pass_observation_collection(paper_network):
    """One-pass observation vectors: identical to the per-node loop."""
    network, _ = paper_network
    index = NeighborIndex(network)
    rng = np.random.default_rng(13)
    nodes = rng.choice(network.num_nodes, size=1000, replace=False)

    index.observations_of_nodes(nodes[:8])
    index.observations_of_nodes(nodes[:8], batched=False)

    loop_time, looped = _best_of(
        lambda: index.observations_of_nodes(nodes, batched=False), rounds=2
    )
    batch_time, batched = _best_of(
        lambda: index.observations_of_nodes(nodes), rounds=3
    )

    np.testing.assert_array_equal(batched, looped)
    speedup = loop_time / batch_time
    record_benchmark(
        "one_pass_observations",
        speedup=speedup,
        loop_seconds=loop_time,
        batch_seconds=batch_time,
        nodes=1000,
    )
    print(
        f"\none-pass observations: loop {loop_time * 1000:.1f} ms, "
        f"one-pass {batch_time * 1000:.1f} ms, speedup {speedup:.1f}x "
        f"(1000 nodes)"
    )
    assert speedup > 1.0


def test_pruned_localization_speedup(wide_network):
    """Active-group pruning at 1024 groups: >= 1.5x over the dense engine,
    bit-identical estimates."""
    network, knowledge = wide_network
    index = NeighborIndex(network)
    rng = np.random.default_rng(11)
    nodes = rng.choice(network.num_nodes, size=NUM_PRUNED_VICTIMS, replace=False)
    observations = index.observations_of_nodes(nodes)
    localizer = BeaconlessLocalizer()

    active = knowledge.active_groups(network.positions[nodes])
    fraction = np.mean([a.size for a in active]) / knowledge.n_groups
    assert fraction < 0.15  # the sparse regime this benchmark is about

    localizer.localize_observations(knowledge, observations[:4])
    localizer.localize_observations(knowledge, observations[:4], prune=False)

    dense_time, dense_estimates = _best_of(
        lambda: localizer.localize_observations(
            knowledge, observations, prune=False
        ),
        rounds=2,
    )
    pruned_time, pruned_estimates = _best_of(
        lambda: localizer.localize_observations(knowledge, observations),
        rounds=2,
    )

    np.testing.assert_array_equal(pruned_estimates, dense_estimates)
    speedup = dense_time / pruned_time
    record_benchmark(
        "pruned_localization",
        speedup=speedup,
        dense_seconds=dense_time,
        pruned_seconds=pruned_time,
        victims=NUM_PRUNED_VICTIMS,
        n_groups=knowledge.n_groups,
        active_fraction=float(fraction),
    )
    print(
        f"\npruned localization: dense {dense_time * 1000:.0f} ms, "
        f"pruned {pruned_time * 1000:.0f} ms, speedup {speedup:.1f}x "
        f"({NUM_PRUNED_VICTIMS} victims, {knowledge.n_groups} groups, "
        f"active fraction {fraction:.1%})"
    )
    # Both paths run on the same machine in the same process, so this ratio
    # is largely core-count independent; the reference measurement is ~2.6x,
    # leaving the 1.5x acceptance bound plenty of margin on noisy runners.
    assert speedup >= 1.5
