"""Looped vs batched hot paths of the evaluation pipeline.

The paper's evaluation scores thousands of ``(observation, estimated
location)`` pairs; this benchmark tracks the two kernels that used to pay a
Python-level loop per victim:

* :meth:`BeaconlessLocalizer.localize_observations` — per-row coarse-to-fine
  grid search vs the shared-lattice batched engine;
* :meth:`NeighborIndex.observations_of_nodes` — per-node KD-tree queries vs
  the one-pass vectorised collection.

Both comparisons assert that the fast path reproduces the reference output
exactly, so the speedup numbers printed here are for identical results.
"""

import os
import time

import numpy as np
import pytest

from repro.deployment.models import paper_deployment_model
from repro.localization.beaconless import BeaconlessLocalizer
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio

#: Number of victims localized by the batched-localization comparison.
NUM_VICTIMS = 200

#: Required speedup factors.  The defaults reflect dedicated hardware; CI
#: runners with few cores and noisy neighbours can relax them via the
#: environment without losing the output-equality checks.
MIN_LOCALIZATION_SPEEDUP = float(os.environ.get("LAD_BENCH_MIN_SPEEDUP", "5.0"))
MIN_OBSERVATION_SPEEDUP = float(os.environ.get("LAD_BENCH_MIN_OBS_SPEEDUP", "1.5"))


@pytest.fixture(scope="module")
def paper_network():
    generator = NetworkGenerator(
        paper_deployment_model(), group_size=300, radio=UnitDiskRadio(100.0)
    )
    network = generator.generate(rng=11)
    knowledge = generator.knowledge(omega=1000)
    return network, knowledge


@pytest.fixture(scope="module")
def victim_observations(paper_network):
    network, _ = paper_network
    index = NeighborIndex(network)
    rng = np.random.default_rng(11)
    nodes = rng.choice(network.num_nodes, size=NUM_VICTIMS, replace=False)
    return nodes, index.observations_of_nodes(nodes)


def _best_of(callable_, rounds):
    best, result = np.inf, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_localization_speedup(paper_network, victim_observations):
    """Batched localization of 200 victims: >= 5x faster, identical output."""
    _, knowledge = paper_network
    _, observations = victim_observations
    localizer = BeaconlessLocalizer()

    # Warm both paths (table construction, numpy caches) before timing.
    localizer.localize_observations(knowledge, observations[:4])
    localizer.localize_observations(knowledge, observations[:4], batched=False)

    loop_time, loop_estimates = _best_of(
        lambda: localizer.localize_observations(
            knowledge, observations, batched=False
        ),
        rounds=2,
    )
    batch_time, batch_estimates = _best_of(
        lambda: localizer.localize_observations(knowledge, observations),
        rounds=3,
    )

    np.testing.assert_array_equal(batch_estimates, loop_estimates)
    speedup = loop_time / batch_time
    print(
        f"\nbatched localization: loop {loop_time * 1000:.0f} ms, "
        f"batch {batch_time * 1000:.0f} ms, speedup {speedup:.1f}x "
        f"({NUM_VICTIMS} victims)"
    )
    assert speedup >= MIN_LOCALIZATION_SPEEDUP


def test_one_pass_observation_collection(paper_network):
    """One-pass observation vectors: identical to the per-node loop, no slower."""
    network, _ = paper_network
    index = NeighborIndex(network)
    rng = np.random.default_rng(13)
    nodes = rng.choice(network.num_nodes, size=1000, replace=False)

    index.observations_of_nodes(nodes[:8])
    index.observations_of_nodes(nodes[:8], batched=False)

    loop_time, looped = _best_of(
        lambda: index.observations_of_nodes(nodes, batched=False), rounds=2
    )
    batch_time, batched = _best_of(
        lambda: index.observations_of_nodes(nodes), rounds=3
    )

    np.testing.assert_array_equal(batched, looped)
    speedup = loop_time / batch_time
    print(
        f"\none-pass observations: loop {loop_time * 1000:.1f} ms, "
        f"one-pass {batch_time * 1000:.1f} ms, speedup {speedup:.1f}x "
        f"(1000 nodes)"
    )
    assert speedup >= MIN_OBSERVATION_SPEEDUP
