"""Figure 7 benchmark — detection rate vs degree of damage (``DR-D-x``).

Paper setting: FP = 1 %, m = 300, Diff metric, Dec-Bounded attacks,
x ∈ {10, 20, 30} %, D swept 40 .. 160 m.
Expected shape: low detection at small D, rising to ~100 % at large D for
every compromise level.
"""

import numpy as np

from repro.experiments.figures import fig7
from repro.experiments.reporting import format_figure


def test_fig7_detection_rate_vs_degree_of_damage(benchmark, paper_simulation):
    result = benchmark.pedantic(
        lambda: fig7.run(simulation=paper_simulation),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(result))

    panel = result.get_panel("DR-D-x")
    for series in panel.series:
        ys = np.array(series.y)
        # The curve must rise overall and finish high at D=160.
        assert ys[-1] >= ys[0]
        assert ys[-1] > 0.6
