"""Session-wide store for benchmark measurements (``BENCH_pr.json``).

Lives in its own module (rather than ``conftest.py``) because pytest loads
root conftests under a different module name than a plain ``import``
would — a shared store must have exactly one instance.  Benchmarks call
:func:`record_benchmark`; the session-finish hook in ``conftest.py`` calls
:func:`write_report` when ``LAD_BENCH_JSON`` is set.
"""

from __future__ import annotations

import json
import platform
import time

#: Records collected by :func:`record_benchmark` during this session.
_BENCH_RECORDS: dict = {}


def record_benchmark(name: str, **fields) -> None:
    """Register one benchmark measurement for the ``LAD_BENCH_JSON`` report.

    *fields* should carry at least ``speedup`` (the tracked ratio) plus the
    wall times in seconds; everything JSON-serialisable is kept verbatim.
    """
    _BENCH_RECORDS[name] = fields


def write_report(path: str) -> None:
    """Write the collected records (if any) as a JSON report to *path*."""
    if not _BENCH_RECORDS:
        return
    payload = {
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": _BENCH_RECORDS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
