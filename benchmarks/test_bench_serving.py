"""Micro-batched vs batch-size-1 throughput of the detection service.

The streaming front of :class:`repro.serving.ServiceRuntime` admits claims
into a bounded queue and flushes them to ``DetectionService.verify_batch``
in micro-batches.  The point of batching is that one vectorised scoring
call amortises the per-claim fixed costs (event-loop hops, the executor
round-trip, and the dense ``expected_observation`` evaluation), so this
benchmark drives the same saturation load through two runtimes that differ
only in ``max_batch_size`` — 32 vs 1 — and tracks the throughput ratio.

Both runs serve the identical claim stream and must produce bit-identical
verdict scores, so the speedup is for identical results.  The measurement
lands in ``BENCH_pr.json`` (``serving_micro_batch`` record, with client-side
p50/p99 latencies) and CI fails when the ratio drops below the floor in
``benchmarks/BENCH_baseline.json``.
"""

import asyncio

import numpy as np
import pytest

from benchmarks.bench_records import record_benchmark
from benchmarks.conftest import BENCH_SEED
from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession
from repro.serving import (
    ServiceRuntime,
    ServingConfig,
    claims_from_session,
    run_load,
)

#: Claims driven through each runtime per timed round (victims are cycled).
NUM_CLAIMS = 400

#: Timed rounds per configuration; the best round counts.  Saturation runs
#: are short (tens of ms), so a single scheduler hiccup can dominate one
#: round — best-of matches how the other speedup benchmarks measure.
ROUNDS = 3


@pytest.fixture(scope="module")
def serving_session() -> LadSession:
    """A quickly-trained session; the benchmark times serving, not training."""
    config = SimulationConfig(
        group_size=100,
        num_training_samples=60,
        training_samples_per_network=30,
        num_victims=40,
        victims_per_network=20,
        gz_omega=500,
        seed=BENCH_SEED,
    )
    return LadSession(config)


def _drive(service, claims, *, max_batch_size: int):
    config = ServingConfig(
        max_batch_size=max_batch_size,
        max_wait_ms=2.0,
        queue_size=len(claims),
        overflow="block",
    )

    async def run():
        async with ServiceRuntime(service, config) as runtime:
            report = await run_load(runtime, claims)
            return report, runtime.stats

    return asyncio.run(run())


def test_micro_batching_throughput(serving_session):
    """Micro-batched serving must beat batch-size-1 on claims/sec."""
    service = serving_session.service(metrics=("diff",))
    claims = claims_from_session(serving_session, count=NUM_CLAIMS)
    offline = np.array(
        [verdict.score for verdict in service.verify_batch(claims)]
    )

    # Warm both paths (numpy caches, executor threads) before timing.
    _drive(service, claims[:32], max_batch_size=32)
    _drive(service, claims[:32], max_batch_size=1)

    def best_of(max_batch_size: int):
        best = None
        for _ in range(ROUNDS):
            report, stats = _drive(
                service, claims, max_batch_size=max_batch_size
            )
            assert report.completed == NUM_CLAIMS
            assert report.rejected == 0 and report.errors == 0
            assert stats.completed == NUM_CLAIMS
            # Identical verdicts every round — and identical to offline.
            assert np.array_equal(report.scores, offline)
            if best is None or report.claims_per_sec > best[0].claims_per_sec:
                best = (report, stats)
        return best

    batched_report, batched_stats = best_of(32)
    single_report, single_stats = best_of(1)
    assert batched_stats.largest_batch > 1
    assert single_stats.largest_batch == 1

    speedup = batched_report.claims_per_sec / single_report.claims_per_sec
    record_benchmark(
        "serving_micro_batch",
        speedup=speedup,
        batched_claims_per_sec=batched_report.claims_per_sec,
        single_claims_per_sec=single_report.claims_per_sec,
        batched_p50_ms=batched_report.p50_ms,
        batched_p99_ms=batched_report.p99_ms,
        single_p50_ms=single_report.p50_ms,
        single_p99_ms=single_report.p99_ms,
        mean_batch=batched_stats.mean_batch_size,
        claims=NUM_CLAIMS,
    )
    print(
        f"\nserving micro-batch: batched {batched_report.claims_per_sec:.0f} "
        f"claims/s (p99 {batched_report.p99_ms:.2f} ms, mean batch "
        f"{batched_stats.mean_batch_size:.1f}) vs single "
        f"{single_report.claims_per_sec:.0f} claims/s "
        f"(p99 {single_report.p99_ms:.2f} ms): speedup {speedup:.1f}x"
    )
    assert speedup > 1.0
