"""Micro-benchmarks of the hot kernels behind the figure reproductions.

These are conventional pytest-benchmark timings (many rounds) of the three
operations the Monte-Carlo evaluation spends its time in: neighbour
discovery / observation counting, the vectorised anomaly metrics, and the
beaconless MLE localization.
"""

import numpy as np
import pytest

from repro.core.metrics import AddAllMetric, DiffMetric, ProbabilityMetric
from repro.deployment.models import paper_deployment_model
from repro.localization.beaconless import BeaconlessLocalizer
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio


@pytest.fixture(scope="module")
def medium_network():
    generator = NetworkGenerator(
        paper_deployment_model(), group_size=100, radio=UnitDiskRadio(100.0)
    )
    network = generator.generate(rng=1)
    knowledge = generator.knowledge(omega=500)
    return generator, network, knowledge


def test_neighbor_index_construction(benchmark, medium_network):
    _, network, _ = medium_network
    index = benchmark(lambda: NeighborIndex(network))
    assert index.network.num_nodes == network.num_nodes


def test_observation_counting(benchmark, medium_network):
    _, network, _ = medium_network
    index = NeighborIndex(network)
    nodes = np.arange(0, network.num_nodes, network.num_nodes // 50)[:50]

    observations = benchmark(lambda: index.observations_of_nodes(nodes))
    assert observations.shape == (len(nodes), network.n_groups)


def test_metric_batch_computation(benchmark, medium_network):
    _, network, knowledge = medium_network
    rng = np.random.default_rng(0)
    locations = knowledge.region.sample_uniform(rng, 2000)
    expected = knowledge.expected_observation(locations)
    observations = rng.poisson(np.clip(expected, 0.01, None)).astype(float)
    metrics = [DiffMetric(), AddAllMetric(), ProbabilityMetric()]

    def run_all():
        return [
            m.compute(observations, expected, group_size=knowledge.group_size)
            for m in metrics
        ]

    results = benchmark(run_all)
    assert all(np.asarray(r).shape == (2000,) for r in results)


def test_beaconless_localization(benchmark, medium_network):
    _, network, knowledge = medium_network
    index = NeighborIndex(network)
    nodes = np.arange(0, network.num_nodes, network.num_nodes // 20)[:20]
    observations = index.observations_of_nodes(nodes)
    localizer = BeaconlessLocalizer()

    estimates = benchmark(
        lambda: localizer.localize_observations(knowledge, observations)
    )
    errors = np.hypot(*(estimates - network.positions[nodes]).T)
    assert np.median(errors) < 30.0


def test_expected_observation_kernel(benchmark, medium_network):
    _, _, knowledge = medium_network
    rng = np.random.default_rng(2)
    locations = knowledge.region.sample_uniform(rng, 5000)

    expected = benchmark(lambda: knowledge.expected_observation(locations))
    assert expected.shape == (5000, knowledge.n_groups)
