"""Batched vs per-row hot paths of the measurement-modality localizers.

The RSSI path-loss and TDOA multilateration schemes join the beacon family
with the same contract as the rest: ``localize_many`` must be bit-identical
to the per-row ``localize`` loop, so the training pass can batch a whole
sample's contexts without changing a single estimate.  These benchmarks pin
that the batch path actually is a fast path — the per-row loop pays Python
overhead (and, for TDOA, a per-row SVD) that the batched solvers amortise.

Both comparisons assert exact equality before recording the speedup; CI
writes the numbers to ``BENCH_pr.json`` and fails when a tracked speedup
drops below its floor in ``benchmarks/BENCH_baseline.json``
(``scripts/check_bench_regression.py``).
"""

import time

import numpy as np
import pytest

from benchmarks.bench_records import record_benchmark
from repro.deployment.models import paper_deployment_model
from repro.localization.beacons import BeaconSpec, beacon_contexts
from repro.localization.rssi import RssiPathLossLocalizer
from repro.localization.tdoa import TdoaMultilaterationLocalizer
from repro.network.generator import NetworkGenerator
from repro.network.radio import UnitDiskRadio
from repro.types import PAPER_REGION

#: Nodes localized per comparison (a training-pass-sized batch).
NUM_NODES = 512


def _best_of(callable_, rounds):
    best, result = np.inf, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def node_positions():
    generator = NetworkGenerator(
        paper_deployment_model(), group_size=300, radio=UnitDiskRadio(100.0)
    )
    network = generator.generate(rng=11)
    rng = np.random.default_rng(17)
    nodes = rng.choice(network.num_nodes, size=NUM_NODES, replace=False)
    return network.positions[nodes]


def _bench_scheme(name, localizer, positions, noise_std):
    beacons = BeaconSpec(
        count=25, transmit_range=600.0, noise_std=noise_std, seed=3
    ).build(PAPER_REGION)
    contexts = beacon_contexts(
        positions, beacons, localizer, rng=np.random.default_rng(29)
    )

    localizer.localize_many(contexts[:4])
    [localizer.localize(ctx) for ctx in contexts[:4]]

    loop_time, looped = _best_of(
        lambda: [localizer.localize(ctx) for ctx in contexts], rounds=2
    )
    batch_time, batched = _best_of(
        lambda: localizer.localize_many(contexts), rounds=3
    )

    np.testing.assert_array_equal(
        np.stack([r.position for r in batched]),
        np.stack([r.position for r in looped]),
    )
    speedup = loop_time / batch_time
    record_benchmark(
        name,
        speedup=speedup,
        loop_seconds=loop_time,
        batch_seconds=batch_time,
        nodes=NUM_NODES,
        beacons=beacons.num_beacons,
    )
    print(
        f"\n{name}: loop {loop_time * 1000:.1f} ms, "
        f"batch {batch_time * 1000:.1f} ms, speedup {speedup:.1f}x "
        f"({NUM_NODES} nodes, {beacons.num_beacons} beacons)"
    )
    return speedup


def test_batched_rssi_speedup(node_positions):
    """Batched RSSI inversion + multilateration vs the per-row loop."""
    speedup = _bench_scheme(
        "batched_rssi", RssiPathLossLocalizer(), node_positions, noise_std=2.0
    )
    assert speedup > 1.0


def test_batched_tdoa_speedup(node_positions):
    """Batched TDOA least squares vs the per-row SVD loop."""
    speedup = _bench_scheme(
        "batched_tdoa",
        TdoaMultilaterationLocalizer(),
        node_positions,
        noise_std=2.0,
    )
    assert speedup > 1.0
