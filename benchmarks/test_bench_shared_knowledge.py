"""Per-worker memory cost of the sweep pool's initializer payload.

Before the shared-knowledge transport, every pool worker received a pickled
copy of the full :class:`~repro.deployment.knowledge.DeploymentKnowledge` —
the deployment lattice plus the tabulated g(z) spline — so memory per
worker grew with the knowledge tables, O(knowledge).  The transport moves
those arrays into ``multiprocessing.shared_memory`` segments mapped by all
workers and ships only a metadata skeleton through pickle, so the per-worker
payload is O(victims).

This benchmark measures the compression directly: the ratio of the pickled
full-knowledge bytes to the pickled pool-payload bytes at the paper's
g(z) resolution (``gz_omega=4000``).  The ratio lands in ``BENCH_pr.json``
as the ``shared_knowledge_payload`` record and CI fails below the floor in
``benchmarks/BENCH_baseline.json`` — losing the metadata-only property
(e.g. a refactor that drags an array back into the payload) collapses the
ratio far below any noise margin.  The rebuilt worker state must stay
bit-identical, so the saving is for identical results.
"""

import pickle

import numpy as np

from benchmarks.bench_records import record_benchmark
from benchmarks.conftest import BENCH_SEED
from repro.deployment.knowledge import DeploymentKnowledge
from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession


def test_pool_payload_is_small_and_faithful():
    """The pickled pool payload must undercut pickled knowledge by >= 5x."""
    session = LadSession(
        SimulationConfig(
            group_size=100,
            num_training_samples=40,
            training_samples_per_network=20,
            num_victims=40,
            victims_per_network=20,
            gz_omega=4000,
            seed=BENCH_SEED,
        )
    )
    runner = session.sweep(workers=2)
    segments, payload = runner._pool_payload()
    try:
        payload_bytes = len(pickle.dumps(payload))
        knowledge_bytes = len(pickle.dumps(session.knowledge))
        ratio = knowledge_bytes / payload_bytes

        # The saving is only meaningful if the worker-side rebuild is
        # faithful: same scores from the shared arrays, bit for bit.
        arrays, skeleton = session.knowledge.share_parts()
        rebuilt = DeploymentKnowledge.from_share_parts(skeleton, arrays)
        sample = session.victims()
        np.testing.assert_array_equal(
            rebuilt.log_likelihood_batch(
                sample.actual_locations[:8], sample.observations[:8], prune=True
            ),
            session.knowledge.log_likelihood_batch(
                sample.actual_locations[:8], sample.observations[:8], prune=True
            ),
        )
    finally:
        for segment in segments:
            segment.close()
            segment.unlink()

    print(
        f"\npool payload: {payload_bytes / 1024.0:.1f} KiB pickled vs "
        f"{knowledge_bytes / 1024.0:.1f} KiB full knowledge "
        f"({ratio:.1f}x smaller, gz_omega=4000)"
    )
    record_benchmark(
        "shared_knowledge_payload",
        speedup=round(ratio, 2),
        payload_bytes=payload_bytes,
        knowledge_bytes=knowledge_bytes,
        gz_omega=4000,
        group_size=100,
    )
    assert ratio >= 5.0
