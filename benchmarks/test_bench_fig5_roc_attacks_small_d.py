"""Figure 5 benchmark — ROC curves for Dec-Bounded vs Dec-Only attacks, small D.

Paper setting: x = 10 %, m = 300, Diff metric, D ∈ {40, 80}.
Expected shape: the Dec-Bounded attack is substantially harder to detect
than the Dec-Only attack at these small degrees of damage.
"""

import numpy as np

from repro.experiments.figures import fig5
from repro.experiments.reporting import format_figure


def test_fig5_roc_for_attack_classes_small_damage(benchmark, paper_simulation):
    result = benchmark.pedantic(
        lambda: fig5.run(simulation=paper_simulation),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(result))

    for panel in result.panels:
        bounded = np.array(panel.get_series("Dec-Bounded Attacks").y)
        only = np.array(panel.get_series("Dec-Only Attacks").y)
        # Dec-Only must be at least as detectable on average.
        assert only.mean() >= bounded.mean() - 0.05
