"""Backend kernel benchmarks: segmented reductions and tiered coarse search.

The refinement loop of the batched beaconless engine used to gather each
row's best candidate with a per-row Python ``np.argmax`` pass; the
:meth:`ArrayBackend.segment_argmax` kernel replaces that with one flat
segmented reduction (``np.maximum.reduceat`` + a tagged ``minimum.reduceat``
for first-max tie-breaking).  The reduction is bit-identical to the loop —
same winners, same maxima — so the tracked speedup is for identical
results, and CI gates it through ``benchmarks/BENCH_baseline.json`` like
the other kernels.

The hierarchical two-tier coarse search (``BeaconlessLocalizer(
coarse_tiers=2)``) is measured in the regime it targets — a wide region
whose full-resolution coarse lattice is ~16k candidates — where the
stride-subsampled first tier cuts the dense scan by an order of magnitude
while the second tier restores the exact dense winner.
"""

import time

import numpy as np
import pytest

from benchmarks.bench_records import record_benchmark
from repro.backend import default_backend
from repro.deployment.distributions import GaussianResidentDistribution
from repro.deployment.models import GridDeploymentModel
from repro.localization.beaconless import BeaconlessLocalizer
from repro.network.generator import NetworkGenerator
from repro.network.neighbors import NeighborIndex
from repro.network.radio import UnitDiskRadio
from repro.types import Region

#: Segments (refinement rows) of the segmented-argmax comparison.
NUM_SEGMENTS = 512

#: Candidates per refinement grid (an 11 x 11 refinement window).
SEGMENT_SIZE = 121

#: Victims localized by the tiered-coarse-search comparison.
NUM_TIERED_VICTIMS = 50


def _best_of(callable_, rounds):
    best, result = np.inf, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_segment_argmax_speedup():
    """One segmented reduction vs a per-row argmax loop: bit-identical
    winners, tracked speedup."""
    backend = default_backend()
    rng = np.random.default_rng(11)
    counts = np.full(NUM_SEGMENTS, SEGMENT_SIZE, dtype=np.int64)
    values = rng.normal(size=int(counts.sum()))

    def looped():
        offsets = np.concatenate([[0], np.cumsum(counts[:-1])])
        indices = np.empty(NUM_SEGMENTS, dtype=np.int64)
        maxima = np.empty(NUM_SEGMENTS)
        for row, (offset, count) in enumerate(zip(offsets, counts)):
            block = values[offset : offset + count]
            local = int(np.argmax(block))
            indices[row] = offset + local
            maxima[row] = block[local]
        return indices, maxima

    backend.segment_argmax(values[: 4 * SEGMENT_SIZE], counts[:4])
    loop_time, (loop_idx, loop_max) = _best_of(looped, rounds=3)
    seg_time, (seg_idx, seg_max) = _best_of(
        lambda: backend.segment_argmax(values, counts), rounds=5
    )

    np.testing.assert_array_equal(seg_idx, loop_idx)
    np.testing.assert_array_equal(seg_max, loop_max)
    speedup = loop_time / seg_time
    record_benchmark(
        "segmented_argmax",
        speedup=speedup,
        loop_seconds=loop_time,
        segmented_seconds=seg_time,
        segments=NUM_SEGMENTS,
        segment_size=SEGMENT_SIZE,
    )
    print(
        f"\nsegmented argmax: loop {loop_time * 1000:.2f} ms, "
        f"segmented {seg_time * 1000:.2f} ms, speedup {speedup:.1f}x "
        f"({NUM_SEGMENTS} segments x {SEGMENT_SIZE})"
    )
    assert speedup > 1.0


@pytest.fixture(scope="module")
def wide_network():
    """A 32 x 32-group deployment: the coarse lattice regime.

    On the paper-sized region the dense coarse matmul is already cheap, so
    the two-tier search only pays off where it is meant to — a large
    region whose full-resolution coarse lattice is tens of thousands of
    candidates wide.
    """
    model = GridDeploymentModel(
        region=Region(0.0, 0.0, 3200.0, 3200.0),
        rows=32,
        cols=32,
        distribution=GaussianResidentDistribution(50.0),
    )
    generator = NetworkGenerator(
        model=model, group_size=100, radio=UnitDiskRadio(100.0)
    )
    network = generator.generate(rng=11)
    knowledge = generator.knowledge(omega=500)
    return network, knowledge


def test_hierarchical_coarse_search(wide_network):
    """Two-tier coarse search vs the dense coarse scan: same estimates,
    recorded (un-gated) speedup."""
    network, knowledge = wide_network
    index = NeighborIndex(network)
    rng = np.random.default_rng(13)
    nodes = rng.choice(network.num_nodes, size=NUM_TIERED_VICTIMS, replace=False)
    observations = index.observations_of_nodes(nodes)
    dense = BeaconlessLocalizer()
    tiered = BeaconlessLocalizer(coarse_tiers=2)

    dense.localize_observations(knowledge, observations[:4])
    tiered.localize_observations(knowledge, observations[:4])

    dense_time, dense_estimates = _best_of(
        lambda: dense.localize_observations(knowledge, observations), rounds=2
    )
    tiered_time, tiered_estimates = _best_of(
        lambda: tiered.localize_observations(knowledge, observations), rounds=2
    )

    np.testing.assert_array_equal(tiered_estimates, dense_estimates)
    speedup = dense_time / tiered_time
    record_benchmark(
        "hierarchical_coarse",
        speedup=speedup,
        dense_seconds=dense_time,
        tiered_seconds=tiered_time,
        victims=NUM_TIERED_VICTIMS,
    )
    print(
        f"\nhierarchical coarse: dense {dense_time * 1000:.0f} ms, "
        f"two-tier {tiered_time * 1000:.0f} ms, speedup {speedup:.1f}x "
        f"({NUM_TIERED_VICTIMS} victims)"
    )
    # Reference measurement is ~9x; the acceptance bound leaves room for
    # noisy shared runners while still failing if tier 1 stops pruning.
    assert speedup >= 1.5
