"""Shared configuration for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation figures (or an
ablation) and prints the resulting series, so running::

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section in text form.  The Monte-Carlo
sample sizes are scaled by ``LAD_BENCH_SCALE`` (default 0.25) so a full run
finishes in a few minutes on a laptop; set it to 1.0 for paper-quality
statistics.

Speedup benchmarks (``test_bench_batch_pipeline.py``) additionally report
their measurements through :func:`benchmarks.bench_records.record_benchmark`;
when the ``LAD_BENCH_JSON`` environment variable names a file, the collected
records are written there at the end of the session.  CI publishes that file as the
``BENCH_pr.json`` artifact and gates regressions against the committed
``benchmarks/BENCH_baseline.json`` via ``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.bench_records import write_report
from repro.experiments.config import SimulationConfig
from repro.experiments.session import LadSession

#: Monte-Carlo scale factor applied to every figure benchmark.
BENCH_SCALE = float(os.environ.get("LAD_BENCH_SCALE", "0.25"))

#: Master seed shared by all benchmarks (overridable via environment).
BENCH_SEED = int(os.environ.get("LAD_BENCH_SEED", "20050404"))


def bench_config(**overrides) -> SimulationConfig:
    """The paper-parameter configuration scaled for benchmarking."""
    config = SimulationConfig(seed=BENCH_SEED, **overrides)
    return config.scaled(BENCH_SCALE)


def pytest_sessionfinish(session, exitstatus) -> None:
    path = os.environ.get("LAD_BENCH_JSON")
    if path:
        write_report(path)


@pytest.fixture(scope="session")
def paper_simulation() -> LadSession:
    """One shared m=300 simulation reused by the ROC and sweep figures.

    Sharing the simulation means the deployment, the benign training pass
    and the victims' neighbour discovery are paid once across Figures 4–8,
    exactly like the caching the paper's own evaluation would use.
    """
    return LadSession(bench_config())
