"""Figure 6 benchmark — ROC curves for Dec-Bounded vs Dec-Only attacks, large D.

Paper setting: x = 10 %, m = 300, Diff metric, D ∈ {120, 160}.
Expected shape: with a large degree of damage the gap between the two
attack classes closes — both are detected at high rates with small
false-positive budgets, so the expensive mechanisms needed to force
Dec-Only behaviour are unnecessary for high-impact anomalies.
"""

from repro.experiments.figures import fig6
from repro.experiments.reporting import format_figure


def test_fig6_roc_for_attack_classes_large_damage(benchmark, paper_simulation):
    result = benchmark.pedantic(
        lambda: fig6.run(simulation=paper_simulation),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(result))

    panel = result.get_panel("D=160")
    bounded = panel.get_series("Dec-Bounded Attacks")
    only = panel.get_series("Dec-Only Attacks")
    # At D=160 both attacks should be highly detectable at a 10% FP budget,
    # and the gap between the classes should be small.
    assert bounded.y_at(0.10) > 0.7
    assert abs(only.y_at(0.10) - bounded.y_at(0.10)) < 0.3
