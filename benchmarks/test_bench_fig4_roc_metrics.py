"""Figure 4 benchmark — ROC curves for the three detection metrics.

Paper setting: x = 10 %, m = 300, Dec-Bounded attacks, D ∈ {80, 120, 160}.
Expected shape: the Diff metric dominates; all metrics approach the (0, 1)
corner as D grows; at D = 160 the Diff metric detects essentially every
attack without false alarms.
"""

from repro.experiments.figures import fig4
from repro.experiments.reporting import format_figure


def test_fig4_roc_for_all_metrics(benchmark, paper_simulation):
    result = benchmark.pedantic(
        lambda: fig4.run(simulation=paper_simulation),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(result))

    # Sanity constraints on the reproduced shape (loose, to tolerate the
    # scaled-down Monte-Carlo sample sizes).
    for panel in result.panels:
        for series in panel.series:
            assert series.y[-1] == 1.0  # every ROC curve ends at DR=1 for FP=1
    d160 = result.get_panel("D=160").get_series("Diff Metric")
    assert d160.y_at(0.05) > 0.7
