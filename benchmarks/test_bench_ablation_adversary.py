"""Ablation benchmark — greedy metric-minimising adversary vs naive adversaries.

The paper's evaluation always uses the greedy adversary (the worst case for
the defender).  This ablation quantifies how much that choice matters: the
same D-anomaly attack is scored when the compromised neighbours are used
(a) not at all, (b) by the naive silence attack, and (c) by the greedy
Diff-minimising procedure.  The detection rate should drop monotonically
from (a) to (c) — i.e. the greedy adversary is genuinely the hardest to
catch, which justifies evaluating LAD against it.

The file also tracks the speedup of the vectorised
:meth:`GreedyMetricMinimizer.taint_batch` (the 2-D decrease-allocation over
all victims at once) against the per-row :meth:`taint` loop, asserting the
outputs stay bit-identical.
"""

import time

import numpy as np

from benchmarks.bench_records import record_benchmark
from benchmarks.conftest import bench_config
from repro.attacks.base import AttackBudget
from repro.attacks.greedy import GreedyMetricMinimizer
from repro.attacks.localization_attacks import DisplacementAttack
from repro.attacks.primitives import SilenceAttack
from repro.core.evaluation import detection_rate_at_false_positive
from repro.core.metrics import DiffMetric
from repro.experiments.session import LadSession

DEGREE = 80.0
FRACTION = 0.20
FALSE_POSITIVE = 0.01


def _detection_rates(simulation: LadSession) -> dict:
    knowledge = simulation.knowledge
    benign = simulation.benign_scores("diff")
    sample = simulation.victims()
    rng = np.random.default_rng(777)

    spoofed = DisplacementAttack(DEGREE).spoof_locations(
        sample.actual_locations, rng, region=knowledge.region
    )
    expected = knowledge.expected_observation(spoofed)
    metric = DiffMetric()
    budgets = [
        AttackBudget.from_fraction(int(round(o.sum())), FRACTION)
        for o in sample.observations
    ]

    # (a) compromised nodes unused: observation stays honest.
    scores_none = metric.compute(sample.observations, expected, knowledge.group_size)

    # (b) naive silence attack: random whole-node silences.
    silence = SilenceAttack()
    silenced = np.vstack(
        [
            silence.apply(obs, budget, rng=rng)
            for obs, budget in zip(sample.observations, budgets)
        ]
    )
    scores_silence = metric.compute(silenced, expected, knowledge.group_size)

    # (c) greedy Diff-minimising adversary (the paper's procedure).
    greedy = GreedyMetricMinimizer("diff", "dec_bounded")
    tainted = greedy.taint_batch(
        sample.observations, expected, budgets, group_size=knowledge.group_size
    )
    scores_greedy = metric.compute(tainted, expected, knowledge.group_size)

    return {
        "no adversary on detection": detection_rate_at_false_positive(
            benign, scores_none, FALSE_POSITIVE
        )[0],
        "naive silence attack": detection_rate_at_false_positive(
            benign, scores_silence, FALSE_POSITIVE
        )[0],
        "greedy Diff-minimising": detection_rate_at_false_positive(
            benign, scores_greedy, FALSE_POSITIVE
        )[0],
    }


def test_adversary_strength_ablation(benchmark):
    simulation = LadSession(bench_config())
    rates = benchmark.pedantic(
        lambda: _detection_rates(simulation),
        rounds=1,
        iterations=1,
    )

    print()
    print("-- Adversary-strength ablation (D=80, x=20%, FP=1%) --")
    for label, rate in rates.items():
        print(f"  {label:<28} DR = {rate:.3f}")

    assert rates["greedy Diff-minimising"] <= rates["naive silence attack"] + 0.05
    assert rates["naive silence attack"] <= rates["no adversary on detection"] + 0.05


def test_taint_batch_vectorised_speedup():
    """Vectorised taint_batch at 512 victims: bit-identical, >= 5x."""
    rng = np.random.default_rng(20050404)
    num_victims, n_groups = 512, 100
    group_size = 40
    honest = np.round(rng.uniform(0.0, group_size, size=(num_victims, n_groups)))
    expected = rng.uniform(0.0, group_size, size=(num_victims, n_groups))
    budgets = [int(b) for b in rng.integers(0, 2 * group_size, size=num_victims)]
    adversary = GreedyMetricMinimizer("diff", "dec_bounded")

    def per_row_loop():
        return np.vstack(
            [
                adversary.taint(
                    honest[i], expected[i], budgets[i], group_size=group_size
                )
                for i in range(num_victims)
            ]
        )

    def batched():
        return adversary.taint_batch(
            honest, expected, budgets, group_size=group_size
        )

    # Warm both paths before timing.
    batched()
    per_row_loop()

    loop_best, loop_result = np.inf, None
    for _ in range(3):
        start = time.perf_counter()
        loop_result = per_row_loop()
        loop_best = min(loop_best, time.perf_counter() - start)
    batch_best, batch_result = np.inf, None
    for _ in range(5):
        start = time.perf_counter()
        batch_result = batched()
        batch_best = min(batch_best, time.perf_counter() - start)

    np.testing.assert_array_equal(batch_result, loop_result)
    speedup = loop_best / batch_best
    record_benchmark(
        "taint_batch_vectorised",
        speedup=speedup,
        loop_seconds=loop_best,
        batch_seconds=batch_best,
        victims=num_victims,
        n_groups=n_groups,
    )
    print(
        f"\ntaint_batch: loop {loop_best * 1000:.1f} ms, "
        f"batch {batch_best * 1000:.1f} ms, speedup {speedup:.1f}x "
        f"({num_victims} victims)"
    )
    assert speedup >= 5.0
